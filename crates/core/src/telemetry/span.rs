//! Bounded span recorder for stage traces.
//!
//! Spans are coarse-grained by design — one per document, per speculative
//! parse chunk, per shard batch, per merge drain — so a run records
//! thousands of spans, not millions. They land in a fixed-capacity ring
//! guarded by a mutex: the lock is uncontended in practice (each recording
//! thread produces spans at batch granularity), and when the ring fills the
//! oldest spans are overwritten and counted as dropped rather than growing
//! memory without bound.

use std::sync::Mutex;

/// Default span ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

/// Trace thread-id for the coordinator/document thread.
pub const TID_COORDINATOR: u32 = 1;
/// Base trace thread-id for shard workers (`TID_SHARD_BASE + shard`).
pub const TID_SHARD_BASE: u32 = 2;
/// Base trace thread-id for parse workers (`TID_PARSE_BASE + worker`).
pub const TID_PARSE_BASE: u32 = 64;
/// Base trace thread-id for overlapped-front-end publisher threads
/// (`TID_PRODUCER_BASE + producer`). Deliberately far above
/// [`TID_PARSE_BASE`]: producers used to share the parse range, which
/// interleaved their lanes with parse workers in trace viewers.
pub const TID_PRODUCER_BASE: u32 = 1024;

/// One completed span, timestamped relative to the telemetry epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span name (e.g. `"document"`, `"chunk"`, `"batch"`).
    pub name: &'static str,
    /// Category for trace viewers (e.g. `"parse"`, `"shard"`, `"merge"`).
    pub cat: &'static str,
    /// Logical thread id (see the `TID_*` constants).
    pub tid: u32,
    /// Start time in nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct Ring {
    spans: Vec<Span>,
    /// Overwrite cursor once the ring is full.
    next: usize,
    dropped: u64,
    cap: usize,
}

/// Fixed-capacity span sink shared by all instrumented threads.
#[derive(Debug)]
pub struct SpanRecorder {
    ring: Mutex<Ring>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanRecorder {
    /// Recorder holding at most `cap` spans (oldest overwritten beyond that).
    pub fn with_capacity(cap: usize) -> Self {
        SpanRecorder {
            ring: Mutex::new(Ring { spans: Vec::new(), next: 0, dropped: 0, cap: cap.max(1) }),
        }
    }

    /// Record one span, overwriting the oldest when full.
    pub fn record(&self, span: Span) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        if ring.spans.len() < ring.cap {
            ring.spans.push(span);
        } else {
            let at = ring.next;
            ring.spans[at] = span;
            ring.next = (at + 1) % ring.cap;
            ring.dropped += 1;
        }
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("span ring poisoned").dropped
    }

    /// Snapshot of retained spans, sorted by start time.
    pub fn collect(&self) -> Vec<Span> {
        let ring = self.ring.lock().expect("span ring poisoned");
        let mut spans = ring.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.tid));
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start_ns: u64) -> Span {
        Span { name: "t", cat: "test", tid: 1, start_ns, dur_ns: 10 }
    }

    #[test]
    fn records_and_sorts() {
        let rec = SpanRecorder::with_capacity(8);
        rec.record(span(30));
        rec.record(span(10));
        rec.record(span(20));
        let got = rec.collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].start_ns, 10);
        assert_eq!(got[2].start_ns, 30);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let rec = SpanRecorder::with_capacity(2);
        rec.record(span(1));
        rec.record(span(2));
        rec.record(span(3));
        let got = rec.collect();
        assert_eq!(got.len(), 2);
        assert_eq!(rec.dropped(), 1);
        assert!(got.iter().any(|s| s.start_ns == 3));
        assert!(!got.iter().any(|s| s.start_ns == 1));
    }
}
