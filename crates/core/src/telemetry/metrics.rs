//! Atomic metric primitives and the fixed-field registry.
//!
//! The registry is deliberately *not* a string-keyed map: every metric the
//! pipeline records is a named struct field, so the hot path is a single
//! relaxed atomic op with no hashing, no locking, and no allocation. Export
//! enumerates the fields through hand-written descriptor tables, which is
//! also where each metric's Prometheus-style name and determinism class
//! live.
//!
//! Determinism classes matter for testing: a metric marked `deterministic`
//! must be byte-identical across dispatch modes and shard counts for the
//! same document + query set + plan mode (the differential battery enforces
//! this). Timers, ring/backpressure counters, and parse-front-end counters
//! are scheduling-dependent and are excluded from equality.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 histogram buckets: bucket 0 holds zero-valued samples,
/// bucket `i >= 1` holds samples `v` with `2^(i-1) <= v < 2^i`. 65 buckets
/// cover the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value gauge with a monotonic high-water mark.
///
/// The high-water mark is **registry-lifetime scoped**: it is never reset,
/// so across a multi-document `ShardSession` (or anything else sharing the
/// telemetry handle) it reports the highest level any document reached.
/// Per-document peaks must be obtained by snapshot differencing between
/// runs, not from a single accumulated export.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Record the current level and fold it into the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Most recently recorded level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever recorded.
    #[inline]
    pub fn high(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a sample: 0 for zero, else `64 - leading_zeros(v)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Count in bucket `i` (see [`HIST_BUCKETS`] for the bucket scheme).
    #[inline]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }
}

/// Every metric the pipeline records, as fixed fields. Shared behind an
/// `Arc` by the coordinator, parse workers, shard workers, and the merger.
#[derive(Debug, Default)]
pub struct Registry {
    // ----- stream stage (DocumentDriver; deterministic) -----
    /// SAX events processed (`vitex_stream_events_total`).
    pub stream_events: Counter,
    /// Elements seen (`vitex_stream_elements_total`).
    pub stream_elements: Counter,
    /// Text nodes seen (`vitex_stream_text_nodes_total`).
    pub stream_text_nodes: Counter,
    /// Matches emitted across all queries (`vitex_matches_total`).
    pub matches_emitted: Counter,

    // ----- machine stage (TwigM; folded per subscription; deterministic) -----
    /// Stack pushes (`vitex_machine_pushes_total`).
    pub machine_pushes: Counter,
    /// Stack pops (`vitex_machine_pops_total`).
    pub machine_pops: Counter,
    /// Match-flag propagations (`vitex_machine_flag_propagations_total`).
    pub machine_flag_propagations: Counter,
    /// Predicate evaluations (`vitex_machine_predicate_evals_total`).
    pub machine_predicate_evals: Counter,
    /// Element events that engaged a machine with a non-empty push plan
    /// (`vitex_machine_dispatch_hits_total`).
    pub machine_dispatch_hits: Counter,
    /// Candidates created (`vitex_machine_candidates_created_total`).
    pub machine_candidates_created: Counter,
    /// Candidates forwarded (`vitex_machine_candidates_forwarded_total`).
    pub machine_candidates_forwarded: Counter,
    /// Candidates discarded (`vitex_machine_candidates_discarded_total`).
    pub machine_candidates_discarded: Counter,
    /// Solutions emitted by machines (`vitex_machine_emitted_total`).
    pub machine_emitted: Counter,
    /// Duplicate emissions suppressed (`vitex_machine_duplicates_suppressed_total`).
    pub machine_duplicates_suppressed: Counter,
    /// Sum of per-subscription peak stack entries (`vitex_machine_peak_entries_sum`).
    pub machine_peak_entries: Counter,
    /// Sum of per-subscription peak candidates (`vitex_machine_peak_candidates_sum`).
    pub machine_peak_candidates: Counter,
    /// Sum of per-subscription peak machine-resident bytes (`vitex_machine_peak_bytes_sum`).
    pub machine_peak_bytes: Counter,

    // ----- plan stage (QueryPlanner; deterministic) -----
    /// Active subscriptions (`vitex_plan_queries`).
    pub plan_queries: Counter,
    /// Active plan groups (`vitex_plan_groups`).
    pub plan_groups: Counter,
    /// Stacked machine nodes (`vitex_plan_machine_nodes`).
    pub plan_machine_nodes: Counter,
    /// Shared step-trie nodes (`vitex_plan_trie_nodes`).
    pub plan_trie_nodes: Counter,
    /// Trie nodes shared by >1 group (`vitex_plan_shared_trie_nodes`).
    pub plan_shared_trie_nodes: Counter,
    /// Approximate compiled plan bytes (`vitex_plan_bytes`).
    pub plan_bytes: Counter,

    // ----- prefix trie runtime (PrefixShared; deterministic) -----
    /// Shared trie step checks executed (`vitex_prefix_steps_executed_total`).
    pub prefix_steps_executed: Counter,
    /// Per-group step checks avoided by sharing (`vitex_prefix_steps_saved_total`).
    pub prefix_steps_saved: Counter,
    /// Forks from trie state into group machines (`vitex_prefix_forks_total`).
    pub prefix_forks: Counter,
    /// Peak shared trie stack bytes (`vitex_prefix_stack_bytes_peak`).
    pub prefix_stack_bytes: Counter,

    // ----- parse front-end (xmlsax; timing/scheduling dependent) -----
    /// Bytes scanned by the SWAR wide path (`vitex_scan_wide_bytes_total`).
    pub scan_wide_bytes: Counter,
    /// Bytes scanned by the scalar path (`vitex_scan_scalar_bytes_total`).
    pub scan_scalar_bytes: Counter,
    /// Speculative chunks parsed (`vitex_parse_chunks_total`).
    pub parse_chunks: Counter,
    /// Chunks whose speculation was discarded (`vitex_parse_misspeculated_total`).
    pub parse_misspeculated: Counter,
    /// Fragments reparsed inline during stitching (`vitex_parse_reparsed_total`).
    pub parse_reparsed: Counter,
    /// Documents that fell back to sequential parsing (`vitex_parse_sequential_fallback_total`).
    pub parse_sequential_fallback: Counter,
    /// Nanoseconds spent stitching/reconciling speculative chunks on the
    /// coordinator (`vitex_parse_stitch_ns_total`).
    pub parse_stitch_ns: Counter,

    // ----- shard rings and workers (timing dependent) -----
    /// Event batches enqueued to shard rings (`vitex_ring_batches_total`).
    pub ring_batches: Counter,
    /// Producer blocked on a full ring (`vitex_ring_enqueue_stalls_total`).
    pub ring_enqueue_stalls: Counter,
    /// Nanoseconds the producer spent blocked on full rings
    /// (`vitex_ring_stall_ns_total`).
    pub ring_stall_ns: Counter,
    /// Nanoseconds shard workers spent processing batches
    /// (`vitex_worker_busy_ns_total`).
    pub worker_busy_ns: Counter,
    /// Nanoseconds shard workers spent blocked on empty rings
    /// (`vitex_worker_idle_ns_total`).
    pub worker_idle_ns: Counter,
    /// Matches released by the merger (`vitex_merge_released_total`).
    pub merge_released: Counter,
    /// Mid-session shard repartitions performed by the cost-aware placer
    /// (`vitex_shard_repartitions_total`). Placement-dependent — the
    /// round-robin baseline never repartitions — and shard-count
    /// dependent, so excluded from the deterministic class even though
    /// the decision stream is reproducible for a fixed configuration.
    pub shard_repartitions: Counter,
    /// Wall nanoseconds for whole-document runs (`vitex_doc_ns_total`).
    pub doc_ns: Counter,

    // ----- overlapped front-end producers (timing dependent) -----
    /// Batches published to the shard rings by producer (publisher)
    /// threads in the overlapped front-end
    /// (`vitex_producer_batches_total`).
    pub producer_batches: Counter,
    /// Nanoseconds producer threads spent waiting for the coordinator's
    /// admission walk to hand them work
    /// (`vitex_producer_idle_ns_total`).
    pub producer_idle_ns: Counter,

    // ----- gauges -----
    /// Ring occupancy in batches, sampled at enqueue
    /// (`vitex_ring_occupancy`). High-water is registry-lifetime scoped
    /// (see [`Gauge`]): it accumulates across every document a session
    /// runs rather than resetting per document.
    pub ring_occupancy: Gauge,
    /// Matches held by the merger awaiting watermark release
    /// (`vitex_merge_hold_depth`).
    pub merge_hold_depth: Gauge,
    /// Producer (publisher) threads feeding the shard rings in the
    /// overlapped front-end (`vitex_producer_threads`).
    pub producer_threads: Gauge,
    /// Measured per-document shard load imbalance in millis
    /// (`vitex_shard_imbalance`): max shard load over the ideal
    /// per-shard load, scaled by 1000 — 1000 is perfectly balanced,
    /// `shards * 1000` is one shard carrying everything. Computed from
    /// the deterministic machine work counters after every sharded
    /// document; the high-water mark records the worst document the
    /// registry has seen.
    pub shard_imbalance: Gauge,

    // ----- histograms (distributions; timing dependent) -----
    /// Per-event dispatch time in ns (`vitex_dispatch_ns`).
    pub dispatch_ns: Histogram,
    /// Events per shard batch (`vitex_batch_events`).
    pub batch_events: Histogram,
    /// Per-chunk speculative parse time in ns (`vitex_chunk_ns`).
    pub chunk_ns: Histogram,
    /// Merger hold time per released match in ns (`vitex_merge_release_ns`).
    pub merge_release_ns: Histogram,
}

/// One exported counter: name, determinism class, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    /// Prometheus-style metric name.
    pub name: &'static str,
    /// Whether the value must be invariant across dispatch modes and shard
    /// counts (see module docs).
    pub deterministic: bool,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One exported gauge: last value and high-water mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRow {
    /// Prometheus-style metric name.
    pub name: &'static str,
    /// Last recorded level.
    pub value: u64,
    /// High-water mark.
    pub high: u64,
}

/// One exported histogram: count, sum, and non-empty log2 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRow {
    /// Prometheus-style metric name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(bucket_index, count)` pairs for non-empty buckets; samples in
    /// bucket `i >= 1` satisfy `2^(i-1) <= v < 2^i`, bucket 0 is zeros.
    pub buckets: Vec<(usize, u64)>,
}

impl Registry {
    /// Enumerate all counters with their export names and determinism class.
    pub fn counter_rows(&self) -> Vec<CounterRow> {
        let det = |name, c: &Counter| CounterRow { name, deterministic: true, value: c.get() };
        let timing = |name, c: &Counter| CounterRow { name, deterministic: false, value: c.get() };
        vec![
            det("vitex_stream_events_total", &self.stream_events),
            det("vitex_stream_elements_total", &self.stream_elements),
            det("vitex_stream_text_nodes_total", &self.stream_text_nodes),
            det("vitex_matches_total", &self.matches_emitted),
            det("vitex_machine_pushes_total", &self.machine_pushes),
            det("vitex_machine_pops_total", &self.machine_pops),
            det("vitex_machine_flag_propagations_total", &self.machine_flag_propagations),
            det("vitex_machine_predicate_evals_total", &self.machine_predicate_evals),
            det("vitex_machine_dispatch_hits_total", &self.machine_dispatch_hits),
            det("vitex_machine_candidates_created_total", &self.machine_candidates_created),
            det("vitex_machine_candidates_forwarded_total", &self.machine_candidates_forwarded),
            det("vitex_machine_candidates_discarded_total", &self.machine_candidates_discarded),
            det("vitex_machine_emitted_total", &self.machine_emitted),
            det("vitex_machine_duplicates_suppressed_total", &self.machine_duplicates_suppressed),
            det("vitex_machine_peak_entries_sum", &self.machine_peak_entries),
            det("vitex_machine_peak_candidates_sum", &self.machine_peak_candidates),
            det("vitex_machine_peak_bytes_sum", &self.machine_peak_bytes),
            det("vitex_plan_queries", &self.plan_queries),
            det("vitex_plan_groups", &self.plan_groups),
            det("vitex_plan_machine_nodes", &self.plan_machine_nodes),
            det("vitex_plan_trie_nodes", &self.plan_trie_nodes),
            det("vitex_plan_shared_trie_nodes", &self.plan_shared_trie_nodes),
            det("vitex_plan_bytes", &self.plan_bytes),
            det("vitex_prefix_steps_executed_total", &self.prefix_steps_executed),
            det("vitex_prefix_steps_saved_total", &self.prefix_steps_saved),
            det("vitex_prefix_forks_total", &self.prefix_forks),
            det("vitex_prefix_stack_bytes_peak", &self.prefix_stack_bytes),
            timing("vitex_scan_wide_bytes_total", &self.scan_wide_bytes),
            timing("vitex_scan_scalar_bytes_total", &self.scan_scalar_bytes),
            timing("vitex_parse_chunks_total", &self.parse_chunks),
            timing("vitex_parse_misspeculated_total", &self.parse_misspeculated),
            timing("vitex_parse_reparsed_total", &self.parse_reparsed),
            timing("vitex_parse_sequential_fallback_total", &self.parse_sequential_fallback),
            timing("vitex_parse_stitch_ns_total", &self.parse_stitch_ns),
            timing("vitex_ring_batches_total", &self.ring_batches),
            timing("vitex_ring_enqueue_stalls_total", &self.ring_enqueue_stalls),
            timing("vitex_ring_stall_ns_total", &self.ring_stall_ns),
            timing("vitex_worker_busy_ns_total", &self.worker_busy_ns),
            timing("vitex_worker_idle_ns_total", &self.worker_idle_ns),
            timing("vitex_merge_released_total", &self.merge_released),
            timing("vitex_shard_repartitions_total", &self.shard_repartitions),
            timing("vitex_doc_ns_total", &self.doc_ns),
            timing("vitex_producer_batches_total", &self.producer_batches),
            timing("vitex_producer_idle_ns_total", &self.producer_idle_ns),
        ]
    }

    /// Enumerate all gauges.
    pub fn gauge_rows(&self) -> Vec<GaugeRow> {
        let row = |name, g: &Gauge| GaugeRow { name, value: g.get(), high: g.high() };
        vec![
            row("vitex_ring_occupancy", &self.ring_occupancy),
            row("vitex_merge_hold_depth", &self.merge_hold_depth),
            row("vitex_producer_threads", &self.producer_threads),
            row("vitex_shard_imbalance", &self.shard_imbalance),
        ]
    }

    /// Enumerate all histograms (non-empty buckets only).
    pub fn histogram_rows(&self) -> Vec<HistogramRow> {
        let row = |name, h: &Histogram| {
            let buckets = (0..HIST_BUCKETS)
                .filter_map(|i| {
                    let c = h.bucket(i);
                    if c > 0 {
                        Some((i, c))
                    } else {
                        None
                    }
                })
                .collect();
            HistogramRow { name, count: h.count(), sum: h.sum(), buckets }
        };
        vec![
            row("vitex_dispatch_ns", &self.dispatch_ns),
            row("vitex_batch_events", &self.batch_events),
            row("vitex_chunk_ns", &self.chunk_ns),
            row("vitex_merge_release_ns", &self.merge_release_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.set(5);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high(), 9);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(bucket_index(1000)), 1);
        assert!((h.mean() - 1001.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn registry_rows_have_unique_names() {
        let r = Registry::default();
        let mut names: Vec<&str> = r
            .counter_rows()
            .iter()
            .map(|c| c.name)
            .chain(r.gauge_rows().iter().map(|g| g.name))
            .chain(r.histogram_rows().iter().map(|h| h.name))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names in registry");
    }
}
