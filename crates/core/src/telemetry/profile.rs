//! Per-subscription cost attribution: who costs what, live.
//!
//! The engine's whole performance story is built on *sharing* — deduped
//! plan groups, a shared prefix trie, shard fan-out — which makes
//! per-subscription cost invisible: the metrics registry answers "how is
//! the pipeline doing" but not "which of my thousand standing queries is
//! eating the machine". The [`CostLedger`] answers that second question.
//!
//! Attribution has two determinism classes, mirroring the metrics
//! registry:
//!
//! * **Per-query counters** (steps, pushes, pops, predicate evaluations,
//!   dispatch hits, matches, emitted bytes) are folded on the document
//!   thread from the same per-run [`MachineStats`] the engine already
//!   reports per subscription. Because those stats are invariant across
//!   dispatch mode, plan mode, shard count, and parse front-end (the
//!   differential batteries assert it), the per-query profile is
//!   **byte-identical** across every execution configuration —
//!   [`ProfileSnapshot::deterministic_json`] is comparable with `==`.
//! * **Per-group diagnostics** (shared trie steps billed to routed
//!   groups, sampled worker self-time, merge hold latency, subscriber
//!   counts) depend on the chosen plan/shard configuration and are
//!   reported separately, outside the deterministic section.
//!
//! The ledger is a cheap clone-able handle like
//! [`Telemetry`](super::Telemetry): disabled (the default) it holds
//! `None` and every call is an inert early return; enabled it holds an
//! `Arc<Mutex<..>>` that is only locked at per-document fold granularity,
//! never per event.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::Telemetry;
use crate::result::{Match, QueryId};
use crate::stats::MachineStats;

/// Schema identifier embedded in every profile export.
pub const PROFILE_SCHEMA: &str = "vitex.profile.v1";

/// Deterministic per-subscription cost counters, keyed by [`QueryId`] and
/// the query's source text. All counter fields are invariant across
/// dispatch × plan × shard × front-end configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Registration index of the subscription.
    pub id: usize,
    /// The query's source text, as registered.
    pub text: String,
    /// Plan group currently serving this subscription. Group identity is
    /// plan-mode-dependent, so this field is diagnostic only — it is
    /// deliberately **excluded** from the JSON exports.
    pub group: Option<usize>,
    /// Machine stack pushes attributed to this subscription.
    pub pushes: u64,
    /// Machine stack pops attributed to this subscription.
    pub pops: u64,
    /// Predicate evaluations attributed to this subscription.
    pub predicate_evals: u64,
    /// Element events that engaged this subscription's machine.
    pub dispatch_hits: u64,
    /// Matches delivered to this subscription.
    pub matches: u64,
    /// Bytes of match payload delivered (node id + name + value text).
    pub emitted_bytes: u64,
}

impl QueryCost {
    /// Machine steps executed: pushes + pops.
    pub fn steps(&self) -> u64 {
        self.pushes + self.pops
    }

    /// The ranking score: total attributable machine work. Deterministic,
    /// so top-k ranking is stable across every execution configuration.
    pub fn work(&self) -> u64 {
        self.pushes + self.pops + self.predicate_evals + self.dispatch_hits
    }
}

/// Per-plan-group cost diagnostics. Group composition depends on the plan
/// mode (unshared planning runs one group per registration; shared modes
/// dedupe), and self-time/hold figures are scheduling-dependent, so none
/// of this participates in deterministic comparisons.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupCost {
    /// Plan group id.
    pub gid: usize,
    /// Canonical query text of the group.
    pub canonical: String,
    /// Subscriptions served by this group.
    pub subscribers: u64,
    /// Machine stack pushes executed by the group's machine.
    pub pushes: u64,
    /// Machine stack pops executed by the group's machine.
    pub pops: u64,
    /// Predicate evaluations executed by the group's machine.
    pub predicate_evals: u64,
    /// Element events that engaged the group's machine.
    pub dispatch_hits: u64,
    /// Shared step-trie advances billed to this group (prefix-shared
    /// plans only): each trie push is billed once to every routed group,
    /// so the sum over groups counts the work sharing *avoided*.
    pub shared_steps: u64,
    /// Sampled worker self-time in nanoseconds (sharded runs only; the
    /// inline path reports 0). Timing class — never deterministic.
    pub self_ns: u64,
    /// Matches from this group released by the watermark merger.
    pub deliveries: u64,
    /// Nanoseconds those matches waited in the merger for their
    /// watermark. Timing class.
    pub hold_ns: u64,
}

impl GroupCost {
    /// Machine work executed by this group (one machine, however many
    /// subscribers) — the input a cost-aware shard partitioner consumes.
    pub fn work(&self) -> u64 {
        self.pushes + self.pops + self.predicate_evals + self.dispatch_hits
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    docs: u64,
    queries: BTreeMap<usize, QueryCost>,
    groups: BTreeMap<usize, GroupCost>,
}

/// Shared handle to the cost ledger; `None` inside means profiling is
/// disabled and every recording call is a no-op. The mutex is taken at
/// per-document fold granularity only.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    inner: Option<Arc<Mutex<LedgerInner>>>,
}

/// Match payload bytes for delivery accounting: the node id plus the
/// `Arc`-backed name/value text. A pure function of the match, so the
/// total is deterministic wherever the match set is.
fn match_bytes(m: &Match) -> u64 {
    8 + m.name.as_deref().map_or(0, str::len) as u64 + m.value.as_deref().map_or(0, str::len) as u64
}

impl CostLedger {
    /// The no-op handle (the default).
    pub fn disabled() -> CostLedger {
        CostLedger { inner: None }
    }

    /// A live ledger.
    pub fn enabled() -> CostLedger {
        CostLedger { inner: Some(Arc::new(Mutex::new(LedgerInner::default()))) }
    }

    /// Whether attribution is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, LedgerInner>> {
        self.inner.as_ref().map(|m| m.lock().expect("cost ledger poisoned"))
    }

    /// Count one completed document.
    pub fn add_doc(&self) {
        if let Some(mut inner) = self.lock() {
            inner.docs += 1;
        }
    }

    /// Fold one subscription's per-document machine stats and match
    /// deliveries. Called on the document thread after each run, once per
    /// registered query — the same per-subscription fold discipline the
    /// metrics registry uses, which is what makes the per-query counters
    /// configuration-invariant.
    pub fn fold_query(
        &self,
        id: QueryId,
        text: &str,
        group: Option<usize>,
        stats: &MachineStats,
        matches: &[Match],
    ) {
        if let Some(mut inner) = self.lock() {
            let q = inner.queries.entry(id.0).or_default();
            q.id = id.0;
            if q.text.is_empty() {
                q.text = text.to_string();
            }
            q.group = group;
            q.pushes += stats.pushes;
            q.pops += stats.pops;
            q.predicate_evals += stats.predicate_evals;
            q.dispatch_hits += stats.dispatch_hits;
            q.matches += matches.len() as u64;
            q.emitted_bytes += matches.iter().map(match_bytes).sum::<u64>();
        }
    }

    /// Fold one plan group's per-document machine stats (diagnostic
    /// section; group identity is plan-mode-dependent).
    pub fn fold_group(&self, gid: usize, canonical: &str, subscribers: u64, stats: &MachineStats) {
        if let Some(mut inner) = self.lock() {
            let g = inner.groups.entry(gid).or_default();
            g.gid = gid;
            if g.canonical.is_empty() {
                g.canonical = canonical.to_string();
            }
            g.subscribers = subscribers;
            g.pushes += stats.pushes;
            g.pops += stats.pops;
            g.predicate_evals += stats.predicate_evals;
            g.dispatch_hits += stats.dispatch_hits;
        }
    }

    /// Bill shared step-trie advances to routed groups: `counts[gid]`
    /// trie pushes were executed on behalf of group `gid` this document.
    pub fn add_shared_steps(&self, counts: &[u64]) {
        if let Some(mut inner) = self.lock() {
            for (gid, &n) in counts.iter().enumerate() {
                if n > 0 {
                    inner.groups.entry(gid).or_default().shared_steps += n;
                }
            }
        }
    }

    /// Add sampled worker self-time for a group.
    pub fn add_self_ns(&self, gid: usize, ns: u64) {
        if ns > 0 {
            if let Some(mut inner) = self.lock() {
                let g = inner.groups.entry(gid).or_default();
                g.gid = gid;
                g.self_ns += ns;
            }
        }
    }

    /// Add merger hold accounting for a group: `deliveries` matches
    /// released after waiting a total of `ns` nanoseconds.
    pub fn add_hold(&self, gid: usize, deliveries: u64, ns: u64) {
        if deliveries > 0 {
            if let Some(mut inner) = self.lock() {
                let g = inner.groups.entry(gid).or_default();
                g.gid = gid;
                g.deliveries += deliveries;
                g.hold_ns += ns;
            }
        }
    }

    /// Point-in-time copy of the ledger, when enabled.
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        self.lock().map(|inner| ProfileSnapshot {
            docs: inner.docs,
            queries: inner.queries.values().cloned().collect(),
            groups: inner.groups.values().cloned().collect(),
        })
    }
}

/// Point-in-time copy of the cost ledger: deterministic per-query
/// counters plus per-group diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Documents folded into the ledger.
    pub docs: u64,
    /// Per-subscription costs, ordered by query id.
    pub queries: Vec<QueryCost>,
    /// Per-group diagnostics, ordered by group id.
    pub groups: Vec<GroupCost>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// query text — the workspace carries no serde.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ProfileSnapshot {
    /// Queries ranked by [`QueryCost::work`] descending, query id
    /// ascending on ties — a deterministic order, so the ranking is
    /// stable across every execution configuration.
    pub fn top_queries(&self, k: usize) -> Vec<&QueryCost> {
        let mut ranked: Vec<&QueryCost> = self.queries.iter().collect();
        ranked.sort_by(|a, b| b.work().cmp(&a.work()).then(a.id.cmp(&b.id)));
        ranked.truncate(k);
        ranked
    }

    /// Total ranking work across all queries.
    pub fn total_work(&self) -> u64 {
        self.queries.iter().map(QueryCost::work).sum()
    }

    fn queries_json(&self) -> String {
        let mut out = String::from("[");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"query\":\"{}\",\
                 \"vitex_query_steps_total\":{},\
                 \"vitex_query_pushes_total\":{},\
                 \"vitex_query_pops_total\":{},\
                 \"vitex_query_predicate_evals_total\":{},\
                 \"vitex_query_dispatch_hits_total\":{},\
                 \"vitex_query_matches_total\":{},\
                 \"vitex_query_emitted_bytes_total\":{}}}",
                q.id,
                escape_json(&q.text),
                q.steps(),
                q.pushes,
                q.pops,
                q.predicate_evals,
                q.dispatch_hits,
                q.matches,
                q.emitted_bytes,
            );
        }
        out.push(']');
        out
    }

    /// Canonical JSON of the deterministic section only (schema, document
    /// count, per-query counters). Byte-identical across dispatch × plan
    /// × shard × front-end configurations for the same document stream
    /// and query set — tests compare it with `==`.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"schema\":\"{PROFILE_SCHEMA}\",\"docs\":{},\"queries\":{}}}",
            self.docs,
            self.queries_json()
        )
    }

    /// Full profile as stable-schema JSON: the deterministic per-query
    /// section plus the per-group diagnostic section (plan-shape- and
    /// timing-dependent; excluded from equality).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"schema\":\"{PROFILE_SCHEMA}\",\"docs\":{},\"queries\":{},\"groups\":[",
            self.docs,
            self.queries_json()
        );
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"gid\":{},\"canonical\":\"{}\",\"subscribers\":{},\
                 \"pushes\":{},\"pops\":{},\"predicate_evals\":{},\"dispatch_hits\":{},\
                 \"shared_steps\":{},\"self_ns\":{},\"deliveries\":{},\"hold_ns\":{}}}",
                g.gid,
                escape_json(&g.canonical),
                g.subscribers,
                g.pushes,
                g.pops,
                g.predicate_evals,
                g.dispatch_hits,
                g.shared_steps,
                g.self_ns,
                g.deliveries,
                g.hold_ns,
            );
        }
        out.push_str("]}");
        out
    }

    /// The `--profile` stderr report: a top-k hot-query table with cost
    /// shares and, where a shared trie ran, the shared-vs-private step
    /// split (shared = trie advances billed to the query's group, private
    /// = the machine steps the query still executes itself).
    pub fn table(&self, k: usize) -> String {
        let total = self.total_work().max(1);
        let shared_of = |q: &QueryCost| -> Option<u64> {
            let gid = q.group?;
            self.groups.iter().find(|g| g.gid == gid).map(|g| g.shared_steps)
        };
        let mut out = format!(
            "profile: docs={} queries={} groups={} total_work={}\n",
            self.docs,
            self.queries.len(),
            self.groups.len(),
            total
        );
        let _ = writeln!(
            out,
            "{:>4}  {:>12}  {:>6}  {:>10}  {:>8}  {:>8}  {:>8}  {:>15}  query",
            "rank", "work", "share", "steps", "preds", "hits", "matches", "shared/private"
        );
        for (rank, q) in self.top_queries(k).iter().enumerate() {
            let share = 100.0 * q.work() as f64 / total as f64;
            let split = match shared_of(q) {
                Some(s) if s > 0 => format!("{}/{}", s, q.steps()),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:>4}  {:>12}  {:>5.1}%  {:>10}  {:>8}  {:>8}  {:>8}  {:>15}  {}",
                rank + 1,
                q.work(),
                share,
                q.steps(),
                q.predicate_evals,
                q.dispatch_hits,
                q.matches,
                split,
                q.text
            );
        }
        out
    }
}

/// Periodic stderr heartbeat for long sessions: documents per second,
/// ring occupancy, and the top-3 hot plan groups by attributed work.
/// Stops (and joins its thread) on drop.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Start a heartbeat printing every `every` to stderr. The ledger
    /// and telemetry handles are sampled live; either may be disabled
    /// (the corresponding fields print as absent).
    pub fn start(every: Duration, ledger: CostLedger, telemetry: Telemetry) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("vitex-heartbeat".into())
            .spawn(move || heartbeat_loop(every, &ledger, &telemetry, &flag))
            .expect("spawn heartbeat thread");
        Heartbeat { stop, handle: Some(handle) }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn heartbeat_loop(every: Duration, ledger: &CostLedger, telemetry: &Telemetry, stop: &AtomicBool) {
    let mut last_docs = 0u64;
    let mut last = Instant::now();
    loop {
        let deadline = Instant::now() + every;
        while Instant::now() < deadline {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(every));
        }
        let Some(snap) = ledger.snapshot() else { continue };
        let now = Instant::now();
        let dt = now.saturating_duration_since(last).as_secs_f64();
        let delta_docs = snap.docs.saturating_sub(last_docs);
        last_docs = snap.docs;
        last = now;
        let ring = telemetry
            .registry()
            .map(|r| format!(" ring={}/{}", r.ring_occupancy.get(), r.ring_occupancy.high()))
            .unwrap_or_default();
        let mut hot: Vec<&GroupCost> = snap.groups.iter().collect();
        hot.sort_by(|a, b| b.work().cmp(&a.work()).then(a.gid.cmp(&b.gid)));
        let hot = hot
            .iter()
            .take(3)
            .filter(|g| g.work() > 0)
            .map(|g| {
                let text: String = g.canonical.chars().take(32).collect();
                format!("g{}:{}({})", g.gid, g.work(), text)
            })
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!("{}", heartbeat_line(snap.docs, delta_docs, dt, &ring, &hot));
    }
}

/// Formats one heartbeat line. Until the first document completes there
/// is no rate to report — dividing would print a spurious `0.0/s`, or
/// `inf`/`NaN` for a degenerate interval — so the rate field renders as
/// `-` while `docs == 0` and whenever the interval is unusable.
fn heartbeat_line(docs: u64, delta_docs: u64, dt_secs: f64, ring: &str, hot: &str) -> String {
    let rate = if docs == 0 || !dt_secs.is_finite() || dt_secs <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}/s", delta_docs as f64 / dt_secs)
    };
    format!("heartbeat: docs={docs} rate={rate}{ring} hot=[{hot}]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MatchKind;
    use vitex_xmlsax::pos::ByteSpan;

    fn sample_match(name: &str, value: Option<&str>) -> Match {
        Match {
            kind: MatchKind::Element,
            node: 1,
            name: Some(name.into()),
            span: ByteSpan::new(0, 4),
            value: value.map(Into::into),
            level: 1,
        }
    }

    fn stats(pushes: u64, preds: u64) -> MachineStats {
        MachineStats {
            pushes,
            pops: pushes,
            predicate_evals: preds,
            dispatch_hits: pushes,
            ..MachineStats::default()
        }
    }

    #[test]
    fn heartbeat_line_guards_the_rate_division() {
        // Zero completed documents: no rate, not "0.0/s" (and never
        // NaN/inf, whatever the interval did).
        assert_eq!(heartbeat_line(0, 0, 5.0, "", ""), "heartbeat: docs=0 rate=- hot=[]");
        assert_eq!(heartbeat_line(0, 0, 0.0, "", ""), "heartbeat: docs=0 rate=- hot=[]");
        // Degenerate intervals stay non-numeric even with documents done.
        assert_eq!(heartbeat_line(3, 3, 0.0, "", ""), "heartbeat: docs=3 rate=- hot=[]");
        assert_eq!(heartbeat_line(3, 3, f64::NAN, "", ""), "heartbeat: docs=3 rate=- hot=[]");
        // The healthy case formats as before.
        assert_eq!(
            heartbeat_line(10, 5, 2.0, " ring=1/4", "g0:9(//a)"),
            "heartbeat: docs=10 rate=2.5/s ring=1/4 hot=[g0:9(//a)]"
        );
    }

    #[test]
    fn disabled_is_inert() {
        let ledger = CostLedger::disabled();
        assert!(!ledger.is_enabled());
        ledger.add_doc();
        ledger.fold_query(QueryId(0), "//a", None, &stats(1, 0), &[]);
        ledger.fold_group(0, "//a", 1, &stats(1, 0));
        assert!(ledger.snapshot().is_none());
    }

    #[test]
    fn folds_accumulate_per_query() {
        let ledger = CostLedger::enabled();
        ledger.add_doc();
        ledger.add_doc();
        let matches = vec![sample_match("cell", Some("x"))];
        ledger.fold_query(QueryId(0), "//a", Some(0), &stats(5, 2), &matches);
        ledger.fold_query(QueryId(0), "//a", Some(0), &stats(5, 2), &[]);
        let snap = ledger.snapshot().unwrap();
        assert_eq!(snap.docs, 2);
        assert_eq!(snap.queries.len(), 1);
        let q = &snap.queries[0];
        assert_eq!(q.text, "//a");
        assert_eq!(q.pushes, 10);
        assert_eq!(q.predicate_evals, 4);
        assert_eq!(q.matches, 1);
        assert_eq!(q.emitted_bytes, 8 + 4 + 1);
    }

    #[test]
    fn ranking_is_by_work_then_id() {
        let ledger = CostLedger::enabled();
        ledger.fold_query(QueryId(0), "cheap", None, &stats(1, 0), &[]);
        ledger.fold_query(QueryId(1), "hot", None, &stats(100, 50), &[]);
        ledger.fold_query(QueryId(2), "cheap2", None, &stats(1, 0), &[]);
        let snap = ledger.snapshot().unwrap();
        let top = snap.top_queries(2);
        assert_eq!(top[0].text, "hot");
        assert_eq!(top[1].text, "cheap"); // tie with cheap2 broken by id
    }

    #[test]
    fn deterministic_json_shape_and_escaping() {
        let ledger = CostLedger::enabled();
        ledger.add_doc();
        ledger.fold_query(QueryId(3), "//a[b = \"x\"]", Some(7), &stats(2, 1), &[]);
        let snap = ledger.snapshot().unwrap();
        let json = snap.deterministic_json();
        assert!(json.starts_with("{\"schema\":\"vitex.profile.v1\",\"docs\":1,"));
        assert!(json.contains("\"query\":\"//a[b = \\\"x\\\"]\""));
        assert!(json.contains("\"vitex_query_steps_total\":4"));
        assert!(json.contains("\"vitex_query_predicate_evals_total\":1"));
        // Group identity is plan-mode-dependent and must stay out of the
        // deterministic section.
        assert!(!json.contains("\"group\""));
        assert!(!json.contains("\"gid\""));
    }

    #[test]
    fn full_json_adds_group_diagnostics() {
        let ledger = CostLedger::enabled();
        ledger.fold_query(QueryId(0), "//a", Some(0), &stats(2, 0), &[]);
        ledger.fold_group(0, "//a", 3, &stats(2, 0));
        ledger.add_shared_steps(&[4]);
        ledger.add_self_ns(0, 1234);
        ledger.add_hold(0, 2, 99);
        let snap = ledger.snapshot().unwrap();
        let json = snap.to_json();
        assert!(json.contains("\"groups\":[{\"gid\":0,\"canonical\":\"//a\",\"subscribers\":3"));
        assert!(json.contains("\"shared_steps\":4"));
        assert!(json.contains("\"self_ns\":1234"));
        assert!(json.contains("\"deliveries\":2,\"hold_ns\":99"));
        // The queries array is the same bytes in both exports.
        let queries = snap.queries_json();
        assert!(json.contains(&queries));
        assert!(snap.deterministic_json().contains(&queries));
    }

    #[test]
    fn table_ranks_and_splits() {
        let ledger = CostLedger::enabled();
        ledger.add_doc();
        ledger.fold_query(QueryId(0), "//cheap", Some(1), &stats(1, 0), &[]);
        ledger.fold_query(QueryId(1), "//hot//deep", Some(0), &stats(500, 100), &[]);
        ledger.fold_group(0, "//hot//deep", 1, &stats(500, 100));
        ledger.add_shared_steps(&[7]);
        let snap = ledger.snapshot().unwrap();
        let table = snap.table(2);
        let hot_line = table.lines().find(|l| l.contains("//hot//deep")).unwrap();
        assert!(hot_line.trim_start().starts_with('1'), "hot query must rank #1: {hot_line}");
        assert!(hot_line.contains("7/1000"), "shared/private split missing: {hot_line}");
    }

    #[test]
    fn heartbeat_starts_and_stops() {
        let ledger = CostLedger::enabled();
        ledger.add_doc();
        let hb = Heartbeat::start(Duration::from_secs(3600), ledger, Telemetry::disabled());
        drop(hb); // must join promptly despite the long interval
    }
}
