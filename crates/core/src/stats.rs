//! Machine instrumentation.
//!
//! The paper's headline memory claim ("stable at 1 MB while streaming a
//! 75 MB Protein dataset") is about the *machine's* state, not the process
//! RSS. [`MachineStats`] accounts for exactly that state — stack entries,
//! candidate buffers, string-value accumulators — so experiments E1 and E6
//! can report peak machine-resident bytes without an OS profiler.

/// Document-stream counters maintained by the
/// [`crate::driver::DocumentDriver`] — one set per scan, shared verbatim
/// by single-query ([`crate::engine::EvalOutput`]) and multi-query
/// ([`crate::multi::MultiOutput`]) runs so both report identical
/// instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Elements seen in the scan.
    pub elements: u64,
    /// Text nodes seen in the scan.
    pub text_nodes: u64,
    /// Total SAX events processed (including structural events such as
    /// comments and the terminating `EndDocument`).
    pub events: u64,
}

/// Plan-level counters reported by the multi-query planner
/// ([`crate::plan::QueryPlanner`]): how much standing-query structure the
/// shared-prefix plan collapsed. Exposed per run via
/// [`crate::multi::MultiOutput::plan`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanStats {
    /// Active subscriptions (registered queries minus removed ones).
    pub queries: u64,
    /// Active plan groups — the number of TwigM machines actually running.
    /// Equal to `queries` when plan sharing is off or no query duplicates
    /// another.
    pub groups: u64,
    /// Cumulative count of retired group slots recycled by later
    /// registrations: the planner's free-list keeps the group-id space
    /// (and the engine's dispatch bitsets) bounded by *peak* concurrent
    /// groups under churny add/remove sessions.
    pub recycled_slots: u64,
    /// Total stacked machine nodes across active group machines.
    pub machine_nodes: u64,
    /// Nodes in the shared step trie (one per distinct location-step
    /// prefix across all registered queries).
    pub trie_nodes: u64,
    /// Trie nodes on the main path of more than one plan group — the
    /// prefix structure the trie deduplicates.
    pub shared_trie_nodes: u64,
    /// Approximate bytes of compiled plan structure (machine specs, stacks
    /// at rest, trie, subscriber lists).
    pub plan_bytes: u64,

    // ----- prefix-shared execution counters (PlanMode::PrefixShared) -----
    // All four are per-*run* counters maintained by the runtime step trie
    // on the document thread (zero in the other plan modes and before the
    // first run), so they are identical across dispatch modes and shard
    // counts by construction.
    /// Main-path step checks executed against the shared trie this run —
    /// one per (event, trie node with live routes), instead of one per
    /// (event, group, machine node) as in per-group planning. This is the
    /// number the E11 experiment shows scaling with distinct trie nodes
    /// rather than with the query count.
    pub prefix_steps_executed: u64,
    /// Per-group main-path step checks *avoided* by sharing: for every
    /// executed trie check, `routes - 1` group machines did not have to
    /// re-evaluate the same axis/name witness.
    pub prefix_steps_saved: u64,
    /// Forks from shared trie state into per-group machines: entry
    /// deliveries where a trie push fanned out to each routed group's own
    /// stack (flags/candidates diverge per group from here on).
    pub prefix_forks: u64,
    /// Peak bytes of the shared trie stacks this run — the main-path
    /// match state the groups consult instead of each probing their own.
    pub prefix_stack_bytes: u64,
}

impl PlanStats {
    /// Queries per machine: 1.0 means no sharing, k means every machine
    /// serves k subscribers on average.
    pub fn dedup_ratio(&self) -> f64 {
        if self.groups == 0 {
            1.0
        } else {
            self.queries as f64 / self.groups as f64
        }
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "queries={} groups={} dedup={:.2}x recycled_slots={} machine_nodes={} \
             trie_nodes={} shared_trie_nodes={} plan_bytes={}",
            self.queries,
            self.groups,
            self.dedup_ratio(),
            self.recycled_slots,
            self.machine_nodes,
            self.trie_nodes,
            self.shared_trie_nodes,
            self.plan_bytes,
        );
        if self.prefix_steps_executed > 0 {
            line.push_str(&format!(
                " prefix(steps={} saved={} forks={} stack_bytes={})",
                self.prefix_steps_executed,
                self.prefix_steps_saved,
                self.prefix_forks,
                self.prefix_stack_bytes,
            ));
        }
        line
    }
}

/// Counters and gauges maintained by the TwigM machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Stack pushes performed.
    pub pushes: u64,
    /// Stack pops performed.
    pub pops: u64,
    /// Match-flag bits set on parent entries (the paper's "bookkeeping").
    pub flag_propagations: u64,
    /// Predicate evaluations: attribute checks at push time, text
    /// predicate probes on character events, and value comparisons at pop
    /// time. Counted per (entry, predicate) on the same events in every
    /// plan mode, so the value is configuration-invariant.
    pub predicate_evals: u64,
    /// Element events that engaged this machine with a non-empty push
    /// plan — the machine's share of dispatch traffic. Scan-mode calls
    /// with an empty plan are not hits, so Indexed and Scan dispatch
    /// agree by construction.
    pub dispatch_hits: u64,
    /// Candidates created (self, attribute, text).
    pub candidates_created: u64,
    /// Candidates forwarded one query level up.
    pub candidates_forwarded: u64,
    /// Candidates lazily re-attached to an outer entry of the same stack.
    pub candidates_inherited: u64,
    /// Candidates discarded because their last compatible ancestor died.
    pub candidates_discarded: u64,
    /// Candidate instances absorbed into an existing instance of the same
    /// solution on arrival at an entry (range-merge).
    pub candidates_merged: u64,
    /// Candidate copies made (down-copies at forward time in compact mode;
    /// range fan-out in eager mode).
    pub candidates_copied: u64,
    /// Solutions emitted.
    pub emitted: u64,
    /// Duplicate emissions suppressed (eager mode only; compact mode must
    /// never produce any, which the differential tests assert).
    pub duplicates_suppressed: u64,

    /// Current live stack entries across all machine nodes.
    pub live_entries: u64,
    /// Peak of `live_entries`.
    pub peak_entries: u64,
    /// Current live candidates across all entries.
    pub live_candidates: u64,
    /// Peak of `live_candidates`.
    pub peak_candidates: u64,
    /// Current machine-resident bytes (entries + candidates + accumulated
    /// string-value text).
    pub live_bytes: u64,
    /// Peak of `live_bytes`.
    pub peak_bytes: u64,
}

impl MachineStats {
    pub(crate) fn on_push(&mut self, entry_bytes: u64) {
        self.pushes += 1;
        self.live_entries += 1;
        self.peak_entries = self.peak_entries.max(self.live_entries);
        self.add_bytes(entry_bytes);
    }

    pub(crate) fn on_pop(&mut self, entry_bytes: u64) {
        self.pops += 1;
        self.live_entries -= 1;
        self.sub_bytes(entry_bytes);
    }

    pub(crate) fn on_candidate_created(&mut self, bytes: u64) {
        self.candidates_created += 1;
        self.live_candidates += 1;
        self.peak_candidates = self.peak_candidates.max(self.live_candidates);
        self.add_bytes(bytes);
    }

    pub(crate) fn on_candidate_dropped(&mut self, bytes: u64) {
        self.candidates_discarded += 1;
        self.live_candidates -= 1;
        self.sub_bytes(bytes);
    }

    pub(crate) fn on_candidate_copied(&mut self, bytes: u64) {
        self.candidates_copied += 1;
        self.live_candidates += 1;
        self.peak_candidates = self.peak_candidates.max(self.live_candidates);
        self.add_bytes(bytes);
    }

    pub(crate) fn on_candidate_merged(&mut self, bytes: u64) {
        self.candidates_merged += 1;
        self.live_candidates -= 1;
        self.sub_bytes(bytes);
    }

    pub(crate) fn on_candidate_suppressed(&mut self, bytes: u64) {
        self.duplicates_suppressed += 1;
        self.live_candidates -= 1;
        self.sub_bytes(bytes);
    }

    pub(crate) fn on_candidate_emitted(&mut self, bytes: u64) {
        self.emitted += 1;
        self.live_candidates -= 1;
        self.sub_bytes(bytes);
    }

    pub(crate) fn add_bytes(&mut self, bytes: u64) {
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    pub(crate) fn sub_bytes(&mut self, bytes: u64) {
        debug_assert!(self.live_bytes >= bytes, "byte accounting underflow");
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "pushes={} pops={} flags={} preds={} hits={} \
             cands(created={} fwd={} inherit={} drop={}) \
             emitted={} peak_entries={} peak_cands={} peak_bytes={}",
            self.pushes,
            self.pops,
            self.flag_propagations,
            self.predicate_evals,
            self.dispatch_hits,
            self.candidates_created,
            self.candidates_forwarded,
            self.candidates_inherited,
            self.candidates_discarded,
            self.emitted,
            self.peak_entries,
            self.peak_candidates,
            self.peak_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_tracks_peaks() {
        let mut s = MachineStats::default();
        s.on_push(100);
        s.on_push(100);
        assert_eq!(s.live_entries, 2);
        assert_eq!(s.peak_entries, 2);
        assert_eq!(s.peak_bytes, 200);
        s.on_pop(100);
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.peak_entries, 2);
        assert_eq!(s.live_bytes, 100);
        assert_eq!(s.peak_bytes, 200);
    }

    #[test]
    fn candidate_lifecycle() {
        let mut s = MachineStats::default();
        s.on_candidate_created(48);
        s.on_candidate_created(48);
        assert_eq!(s.peak_candidates, 2);
        s.on_candidate_emitted(48);
        s.on_candidate_dropped(48);
        assert_eq!(s.live_candidates, 0);
        assert_eq!(s.emitted, 1);
        assert_eq!(s.candidates_discarded, 1);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn plan_stats_dedup_ratio() {
        let empty = PlanStats::default();
        assert_eq!(empty.dedup_ratio(), 1.0);
        let p = PlanStats { queries: 10, groups: 4, ..PlanStats::default() };
        assert_eq!(p.dedup_ratio(), 2.5);
        assert!(p.summary().contains("dedup=2.50x"));
        assert!(p.summary().contains("groups=4"));
    }

    #[test]
    fn summary_mentions_key_fields() {
        let mut s = MachineStats::default();
        s.on_push(10);
        let text = s.summary();
        assert!(text.contains("pushes=1"));
        assert!(text.contains("peak_bytes=10"));
    }
}
