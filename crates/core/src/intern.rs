//! Element-name interning: strings → dense `u32` symbols.
//!
//! The pub/sub workload the paper motivates ("electronic personalized
//! newspapers") runs *thousands* of standing queries over one stream. With
//! raw string dispatch every `startElement` hashes the tag name once per
//! machine; with interning the name is resolved to a [`Symbol`] **once per
//! event** by the document driver, and every downstream comparison — the
//! [`crate::builder::MachineSpec`] name index, the
//! [`crate::multi::MultiEngine`] dispatch index — is an integer index.
//!
//! Interners are deliberately *local* (owned by an engine, shared by the
//! machines registered with it), not global: symbols from different
//! interners are incomparable, and nothing here is `static` or locked.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned element name: a dense index into its [`Interner`].
///
/// Symbols are only meaningful relative to the interner that produced
/// them; the driver resolves each document name against the engine's
/// interner exactly once per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index (0-based, contiguous per interner).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string-to-[`Symbol`] table with stable, dense indices.
///
/// Each name is stored in one shared allocation (`Arc<str>`), referenced
/// by both the hash map and the index-ordered vector.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<Arc<str>, Symbol>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the symbol for `name`, creating one if needed. Used at
    /// query-compile time: query nametests populate the table.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        let shared: Arc<str> = name.into();
        self.names.push(Arc::clone(&shared));
        self.map.insert(shared, sym);
        sym
    }

    /// Looks up `name` without inserting. Used on the hot path: document
    /// names that no registered query mentions stay out of the table, so
    /// its size is bounded by the query workload, not the stream.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate heap bytes held by the table (string storage plus map
    /// and vector slots). Feeds the plan-memory accounting of the
    /// multi-query engine (experiment E9).
    pub fn heap_bytes(&self) -> u64 {
        let strings: usize = self.names.iter().map(|n| n.len()).sum();
        let slots = self.names.len()
            * (std::mem::size_of::<Arc<str>>() * 2 + std::mem::size_of::<Symbol>());
        (strings + slots) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(i.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        i.intern("known");
        assert_eq!(i.lookup("known").map(Symbol::index), Some(0));
        assert_eq!(i.lookup("unknown"), None);
        assert_eq!(i.len(), 1, "lookup must not grow the table");
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("ProteinEntry");
        assert_eq!(i.resolve(s), "ProteinEntry");
        assert!(!i.is_empty());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut i = Interner::new();
        assert_eq!(i.heap_bytes(), 0);
        i.intern("a");
        let one = i.heap_bytes();
        assert!(one > 0);
        i.intern("bcdefgh");
        assert!(i.heap_bytes() > one);
    }
}
