//! A **plan group**: one shared TwigM machine plus the list of
//! subscribers it answers for.
//!
//! Deduplication is the workhorse of the shared plan: when k standing
//! queries are structurally identical after canonicalization, the group
//! runs *one* machine over the stream and fans every emitted solution out
//! to all k subscriber ids — per-event work and machine memory stop
//! scaling with duplicate registrations.

use crate::machine::TwigM;
use crate::result::QueryId;

/// One deduplicated unit of execution in a shared query plan.
#[derive(Debug)]
pub struct PlanGroup {
    machine: TwigM,
    /// Subscribing queries, registration order (fan-out order).
    subscribers: Vec<QueryId>,
    /// The canonical key every subscriber shares
    /// ([`vitex_xpath::QueryTree::canonical_key`]).
    canonical: String,
    /// Stable hash of `canonical` — compared before the string.
    hash: u64,
    /// Terminal node of the group's main path in the planner's step trie.
    trie_node: usize,
    /// Machine-node index of each main-path element step, in step order —
    /// position `d` is the node trie depth `d + 1` drives under
    /// prefix-shared execution.
    main_nodes: Vec<u32>,
}

impl PlanGroup {
    /// A new group with its first subscriber.
    pub(crate) fn new(
        machine: TwigM,
        canonical: String,
        hash: u64,
        trie_node: usize,
        first: QueryId,
    ) -> Self {
        let main_nodes = machine
            .spec()
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_main)
            .map(|(i, _)| i as u32)
            .collect();
        PlanGroup { machine, subscribers: vec![first], canonical, hash, trie_node, main_nodes }
    }

    /// The shared machine.
    pub fn machine(&self) -> &TwigM {
        &self.machine
    }

    /// Mutable access to the shared machine (the engine resets and drives
    /// it).
    pub(crate) fn machine_mut(&mut self) -> &mut TwigM {
        &mut self.machine
    }

    /// Splits the borrow for the event loop: the machine is driven
    /// mutably while the emit callback fans out over the subscriber list.
    pub(crate) fn machine_and_subscribers(&mut self) -> (&mut TwigM, &[QueryId]) {
        (&mut self.machine, &self.subscribers)
    }

    /// Subscribing query ids, registration order.
    pub fn subscribers(&self) -> &[QueryId] {
        &self.subscribers
    }

    /// Whether any subscriber remains.
    pub fn is_active(&self) -> bool {
        !self.subscribers.is_empty()
    }

    /// The canonical key shared by every subscriber.
    pub fn canonical_key(&self) -> &str {
        &self.canonical
    }

    /// Stable hash of the canonical key.
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }

    /// Terminal trie node of the group's main path.
    pub(crate) fn trie_node(&self) -> usize {
        self.trie_node
    }

    /// Machine-node index per main-path step (trie depth − 1 indexes it).
    pub(crate) fn main_nodes(&self) -> &[u32] {
        &self.main_nodes
    }

    /// Adds a subscriber (idempotence is the caller's concern: every
    /// registration gets a fresh [`QueryId`]).
    pub(crate) fn subscribe(&mut self, id: QueryId) {
        self.subscribers.push(id);
    }

    /// Removes a subscriber. Returns `Some(last)` when the id was
    /// subscribed — `last` meaning it was the final one and the group is
    /// now inactive — and `None` for unknown ids (nothing changed), so
    /// callers can keep their own counters consistent.
    pub(crate) fn unsubscribe(&mut self, id: QueryId) -> Option<bool> {
        let pos = self.subscribers.iter().position(|&s| s == id)?;
        self.subscribers.remove(pos);
        Some(self.subscribers.is_empty())
    }

    /// Approximate bytes of the group at rest: the shared machine plus
    /// bookkeeping.
    pub fn approx_bytes(&self) -> u64 {
        self.machine.approx_build_bytes()
            + (self.subscribers.capacity() * std::mem::size_of::<QueryId>()) as u64
            + (self.main_nodes.capacity() * std::mem::size_of::<u32>()) as u64
            + self.canonical.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitex_xpath::QueryTree;

    fn group() -> PlanGroup {
        let tree = QueryTree::parse("//a[b]").unwrap();
        let machine = TwigM::new(&tree).unwrap();
        PlanGroup::new(machine, tree.canonical_key(), tree.stable_hash(), 1, QueryId(0))
    }

    #[test]
    fn subscribe_unsubscribe_lifecycle() {
        let mut g = group();
        assert!(g.is_active());
        g.subscribe(QueryId(3));
        assert_eq!(g.subscribers(), &[QueryId(0), QueryId(3)]);
        assert_eq!(g.unsubscribe(QueryId(0)), Some(false), "one subscriber remains");
        assert_eq!(g.unsubscribe(QueryId(7)), None, "unknown id is a no-op");
        assert_eq!(g.unsubscribe(QueryId(3)), Some(true), "last subscriber leaves");
        assert!(!g.is_active());
    }

    #[test]
    fn metadata_accessors() {
        let g = group();
        assert_eq!(g.canonical_key(), "//a[/b]");
        assert_eq!(g.trie_node(), 1);
        assert_eq!(g.machine().spec().len(), 2);
        assert!(g.approx_bytes() > 0);
    }
}
