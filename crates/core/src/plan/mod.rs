//! The multi-query **planner**: batches standing queries into a shared
//! execution plan instead of k independent machines.
//!
//! The paper's pub/sub motivation (stock tickers, personalized
//! newspapers) registers thousands of subscriptions over one stream, and
//! realistic subscription sets overlap heavily — many are literally
//! identical, most share long `/site/…`-style prefixes. The planner
//! collapses that redundancy in two layers:
//!
//! 1. **Canonicalization + dedup** — each query is reduced to its
//!    canonical structural form ([`vitex_xpath::QueryTree::canonical_key`]:
//!    predicate order sorted away). Structurally equal queries join one
//!    [`PlanGroup`] sharing a single TwigM machine; the group fans each
//!    solution out to every subscriber id. Matching happens **once** per
//!    distinct query shape, not once per registration.
//! 2. **Shared-prefix trie** — main-path steps (axis + interned name
//!    test) are inserted into a [`StepTrie`], so queries sharing prefixes
//!    share trie nodes. The trie doubles as the grouping index (candidate
//!    groups live at the terminal node, so registration compares canonical
//!    keys against a handful of candidates, not against every group) and
//!    as the measurement substrate for [`PlanStats`] (shared-node counts,
//!    dedup ratio).
//!
//! [`PlanMode::PrefixShared`] (`vitex --prefix-sharing`) adds a third
//! layer on top: the step trie is promoted from a registration-time index
//! into a **runtime** structure whose nodes own the shared main-path
//! match state (see [`trie`]), so a start tag advances each common prefix
//! once per event and only forks into per-group machines where queries
//! diverge — predicates, branches, suffix steps.
//!
//! [`PlanMode::Unshared`] (`vitex --no-plan-sharing`) disables layer 1:
//! every registration gets a private group, reproducing the historical
//! one-machine-per-query behavior bit for bit. The trie is still
//! maintained so the modes report comparable plan statistics.

pub mod group;
pub mod trie;

pub use group::PlanGroup;
pub use trie::{PrefixRunStats, StepKey, StepTrie, TriePush};

use vitex_xpath::query_tree::{NodeKind, QueryTree};

use crate::builder::{BuildError, EvalMode, MachineSpec};
use crate::intern::Interner;
use crate::machine::TwigM;
use crate::result::QueryId;
use crate::stats::PlanStats;

/// Whether structurally equal queries share one machine — and whether
/// distinct queries additionally share runtime state along common
/// main-path prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Canonicalize, dedupe and fan out — the default.
    #[default]
    Shared,
    /// One private machine per registration (the pre-planner behavior,
    /// kept as an escape hatch and ablation baseline).
    Unshared,
    /// Everything `Shared` does, plus YFilter-style prefix-shared
    /// execution: the step trie owns the main-path match state at
    /// runtime, so a start tag advances each shared prefix once and only
    /// forks into per-group machines where queries diverge. Output is
    /// byte-identical to the other modes; only the per-event planning
    /// cost changes.
    PrefixShared,
}

/// The outcome of registering one query with the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// Index of the plan group now serving the query.
    pub group: usize,
    /// Whether the group (and its machine) was created by this
    /// registration — `false` means the query joined an existing machine.
    pub created: bool,
}

/// Plans standing queries into deduplicated, prefix-shared groups.
#[derive(Debug)]
pub struct QueryPlanner {
    mode: PlanMode,
    trie: StepTrie,
    /// Group slots, dense indices. A slot whose group retires (every
    /// subscriber removed) goes onto [`QueryPlanner::free_slots`] and is
    /// **recycled** by a later registration, so long churny add/remove
    /// sessions keep the id space — and with it the engine's dispatch
    /// bitsets — from growing without bound. Between retirement and reuse
    /// the slot still holds the retired group (inactive), so dispatch
    /// structures can read its spec while unwiring it.
    groups: Vec<PlanGroup>,
    /// Retired slots available for reuse, most recently retired last.
    free_slots: Vec<usize>,
    /// Cumulative count of slot reuses ([`PlanStats::recycled_slots`]).
    recycled: u64,
    active_groups: usize,
    active_queries: usize,
}

impl QueryPlanner {
    /// An empty planner.
    pub fn new(mode: PlanMode) -> Self {
        QueryPlanner {
            mode,
            trie: StepTrie::new(),
            groups: Vec::new(),
            free_slots: Vec::new(),
            recycled: 0,
            active_groups: 0,
            active_queries: 0,
        }
    }

    /// The sharing mode.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// Registers `tree` for subscriber `id`: joins an existing group when
    /// sharing finds a structural duplicate, otherwise compiles a new
    /// machine (interning its nametests in `interner`).
    pub fn register(
        &mut self,
        tree: &QueryTree,
        id: QueryId,
        interner: &mut Interner,
    ) -> Result<Registration, BuildError> {
        let steps = self.main_path_steps(tree, interner);
        let terminal = self.trie.insert_path(&steps);
        let canonical = tree.canonical_key();
        let hash = QueryTree::hash_canonical(&canonical);
        if self.mode != PlanMode::Unshared {
            let existing = self.trie.terminals(terminal).iter().copied().find(|&g| {
                let group = &self.groups[g];
                group.is_active()
                    && group.stable_hash() == hash
                    && group.canonical_key() == canonical
            });
            if let Some(g) = existing {
                self.groups[g].subscribe(id);
                self.active_queries += 1;
                return Ok(Registration { group: g, created: false });
            }
        }
        let spec = MachineSpec::compile_with(tree, interner)?;
        let machine = TwigM::from_spec(spec, EvalMode::Compact);
        let group = PlanGroup::new(machine, canonical, hash, terminal, id);
        let gid = match self.free_slots.pop() {
            Some(slot) => {
                // Recycle a retired slot: the engine unwired the old
                // group's dispatch bits at retirement, so the slot is
                // clean to repopulate in place.
                self.recycled += 1;
                self.groups[slot] = group;
                slot
            }
            None => {
                self.groups.push(group);
                self.groups.len() - 1
            }
        };
        self.trie.add_group(terminal, gid);
        self.active_groups += 1;
        self.active_queries += 1;
        Ok(Registration { group: gid, created: true })
    }

    /// Removes subscriber `id` from group `gid`; returns whether it was
    /// the group's **last** subscriber (the group is now inactive and the
    /// engine must stop dispatching to it). An id that is not subscribed
    /// to `gid` changes nothing and returns `false`.
    pub fn unsubscribe(&mut self, gid: usize, id: QueryId) -> bool {
        let Some(last) = self.groups[gid].unsubscribe(id) else {
            return false;
        };
        self.active_queries -= 1;
        if last {
            self.active_groups -= 1;
            self.trie.remove_group(self.groups[gid].trie_node(), gid);
            self.free_slots.push(gid);
        }
        last
    }

    /// All group slots (inactive, not-yet-recycled slots included), dense
    /// indices. The slot count is bounded by the *peak* concurrent group
    /// count, not the registration history — retirement recycles slots.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// Mutable group slice for the engine's event loop.
    pub(crate) fn groups_mut(&mut self) -> &mut [PlanGroup] {
        &mut self.groups
    }

    /// The shared step trie (read-only).
    pub fn trie(&self) -> &StepTrie {
        &self.trie
    }

    /// Splits the planner into the disjoint borrows prefix-shared
    /// execution needs: the runtime trie is advanced once per event while
    /// the group machines are driven from its push decisions.
    pub(crate) fn run_split(&mut self) -> (&mut StepTrie, &mut [PlanGroup]) {
        (&mut self.trie, &mut self.groups)
    }

    /// One group by index.
    pub fn group(&self, gid: usize) -> &PlanGroup {
        &self.groups[gid]
    }

    /// Active subscription count.
    pub fn query_count(&self) -> usize {
        self.active_queries
    }

    /// Active group count (machines actually running).
    pub fn group_count(&self) -> usize {
        self.active_groups
    }

    /// Plan-level statistics. `interner` contributes its table bytes: the
    /// symbol table is part of the shared plan's resident structure.
    pub fn stats(&self, interner: &Interner) -> PlanStats {
        let active = self.groups.iter().filter(|g| g.is_active());
        let (mut machine_nodes, mut plan_bytes) = (0u64, 0u64);
        for g in active {
            machine_nodes += g.machine().spec().len() as u64;
            plan_bytes += g.approx_bytes();
        }
        let run = self.trie.run_stats();
        PlanStats {
            queries: self.active_queries as u64,
            groups: self.active_groups as u64,
            recycled_slots: self.recycled,
            machine_nodes,
            trie_nodes: self.trie.len() as u64,
            shared_trie_nodes: self.trie.shared_nodes() as u64,
            plan_bytes: plan_bytes + self.trie.approx_bytes() + interner.heap_bytes(),
            prefix_steps_executed: run.steps_executed,
            prefix_steps_saved: run.steps_saved,
            prefix_forks: run.forks,
            prefix_stack_bytes: run.peak_stack_bytes(),
        }
    }

    /// The trie keys of `tree`'s main path: element steps only (attribute
    /// and `text()` result steps fold into their parent machine node and
    /// are disambiguated by the canonical key at the terminal).
    fn main_path_steps(&self, tree: &QueryTree, interner: &mut Interner) -> Vec<StepKey> {
        tree.main_path()
            .iter()
            .filter_map(|&id| {
                let node = tree.node(id);
                match &node.kind {
                    NodeKind::Element { name } => Some(StepKey {
                        axis: node.axis,
                        name: name.as_deref().map(|n| interner.intern(n)),
                    }),
                    NodeKind::Attribute { .. } | NodeKind::Text => None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(
        planner: &mut QueryPlanner,
        interner: &mut Interner,
        q: &str,
        id: usize,
    ) -> Registration {
        let tree = QueryTree::parse(q).unwrap();
        planner.register(&tree, QueryId(id), interner).unwrap()
    }

    #[test]
    fn identical_queries_share_one_machine() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        let a = register(&mut p, &mut i, "//a[b and c]/d", 0);
        let b = register(&mut p, &mut i, "//a[c][ b ]/d", 1); // same canonical form
        assert!(a.created);
        assert!(!b.created);
        assert_eq!(a.group, b.group);
        assert_eq!(p.group_count(), 1);
        assert_eq!(p.query_count(), 2);
        assert_eq!(p.group(a.group).subscribers(), &[QueryId(0), QueryId(1)]);
    }

    #[test]
    fn distinct_queries_get_distinct_groups() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        let a = register(&mut p, &mut i, "//a/b", 0);
        let b = register(&mut p, &mut i, "//a/c", 1);
        let c = register(&mut p, &mut i, "//a//b", 2);
        assert!(a.created && b.created && c.created);
        assert_eq!(p.group_count(), 3);
        // //a/b/@id shares the full element path with //a/b but is a
        // different query: same terminal, different group.
        let d = register(&mut p, &mut i, "//a/b/@id", 3);
        assert!(d.created);
        assert_ne!(d.group, a.group);
        assert_eq!(p.group(d.group).trie_node(), p.group(a.group).trie_node());
    }

    #[test]
    fn unshared_mode_never_merges() {
        let mut p = QueryPlanner::new(PlanMode::Unshared);
        let mut i = Interner::new();
        let a = register(&mut p, &mut i, "//a", 0);
        let b = register(&mut p, &mut i, "//a", 1);
        assert!(a.created && b.created);
        assert_ne!(a.group, b.group);
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.stats(&i).dedup_ratio(), 1.0);
    }

    #[test]
    fn unsubscribe_retires_groups() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        let a = register(&mut p, &mut i, "//a", 0);
        register(&mut p, &mut i, "//a", 1);
        assert!(!p.unsubscribe(a.group, QueryId(0)), "one subscriber left");
        assert!(p.unsubscribe(a.group, QueryId(1)), "group now inactive");
        assert_eq!(p.group_count(), 0);
        assert_eq!(p.query_count(), 0);
        // A fresh registration starts a new group *in the recycled slot*:
        // the id space is bounded by peak concurrency, not churn history.
        let c = register(&mut p, &mut i, "//a", 2);
        assert!(c.created);
        assert_eq!(c.group, a.group, "retired slot is recycled");
        assert_eq!(p.stats(&i).recycled_slots, 1);
    }

    #[test]
    fn churny_sessions_recycle_slots_and_bound_the_id_space() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        let first = register(&mut p, &mut i, "//a/b", 0);
        p.unsubscribe(first.group, QueryId(0));
        for round in 1..100usize {
            // Alternate shapes so recycling is not just same-shape reuse.
            let q = if round % 2 == 0 { "//a/b" } else { "//c[d]" };
            let r = register(&mut p, &mut i, q, round);
            assert!(r.created);
            assert!(r.group < 1, "single live group must stay in slot 0, got {}", r.group);
            p.unsubscribe(r.group, QueryId(round));
        }
        assert_eq!(p.groups().len(), 1, "churn must not grow the slot table");
        assert_eq!(p.stats(&i).recycled_slots, 99);
        assert_eq!(p.group_count(), 0);
    }

    #[test]
    fn unsubscribing_an_unknown_id_leaves_counters_intact() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        let a = register(&mut p, &mut i, "//a", 0);
        assert!(!p.unsubscribe(a.group, QueryId(42)), "not a subscriber");
        assert_eq!(p.query_count(), 1);
        assert_eq!(p.group_count(), 1);
        assert!(p.unsubscribe(a.group, QueryId(0)));
        assert!(!p.unsubscribe(a.group, QueryId(0)), "already removed");
        assert_eq!(p.query_count(), 0);
        assert_eq!(p.group_count(), 0);
    }

    #[test]
    fn stats_report_sharing() {
        let mut p = QueryPlanner::new(PlanMode::Shared);
        let mut i = Interner::new();
        register(&mut p, &mut i, "/site/people/person", 0);
        register(&mut p, &mut i, "/site/people/person", 1); // duplicate
        register(&mut p, &mut i, "/site/regions/africa", 2);
        let s = p.stats(&i);
        assert_eq!(s.queries, 3);
        assert_eq!(s.groups, 2);
        assert_eq!(s.dedup_ratio(), 1.5);
        // site, people, person, regions, africa = 5 trie nodes; only
        // /site carries both groups.
        assert_eq!(s.trie_nodes, 5);
        assert_eq!(s.shared_trie_nodes, 1);
        assert!(s.plan_bytes > 0);
        assert!(s.machine_nodes >= 2);
    }
}
