//! The shared-prefix **step trie**: one node per distinct location-step
//! prefix across every registered query — and, under
//! [`crate::plan::PlanMode::PrefixShared`], the *runtime* owner of the
//! main-path match state those steps share.
//!
//! Thousands of realistic standing queries overlap heavily — `/site/…`
//! subscriptions in an auction feed, `//ProteinEntry/…` in the protein
//! stream. The trie materializes that overlap: a query's main path
//! descends edge by edge, each edge labeled by a [`StepKey`] (axis +
//! interned name test), so queries sharing a `/a/b//c…` prefix share trie
//! nodes. Terminal nodes carry the plan groups whose main path ends
//! there, which makes the trie the planner's **grouping index**: an
//! incoming query walks symbols (integer comparisons, no hashing of the
//! whole query) and only then compares canonical keys against the few
//! groups at its terminal.
//!
//! ## Runtime state (prefix-shared execution)
//!
//! The key observation behind prefix sharing is that a TwigM main-path
//! node's **stack shape** — which entries exist, at what level, with what
//! parent pointer — depends *only* on the (axis, name) chain from the
//! machine root, never on the group's predicates, comparisons or result
//! kind (those live in the flags/candidates carried *on* the entries,
//! which do not influence push/pop timing). Every group whose main path
//! routes through a trie node therefore agrees, at every moment of the
//! stream, on that node's stack. Under `PlanMode::PrefixShared` each trie
//! node owns exactly one copy of that stack ([`TrieEntry`]: level +
//! parent pointer), [`StepTrie::advance`] updates it **once per event**,
//! and the engine forks into per-group machines only where state actually
//! diverges — delivering the planned pushes so each group's entry carries
//! its own flags and candidate bookkeeping. Per-event main-path planning
//! thus scales with *distinct trie nodes*, not with the number of
//! registered queries; [`PrefixRunStats`] counts both sides of that
//! trade.

use vitex_xpath::Axis;

use crate::intern::Symbol;

/// The label of a trie edge: one location step of a query's main path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepKey {
    /// Axis of the step.
    pub axis: Axis,
    /// Interned name test; `None` is the wildcard `*`.
    pub name: Option<Symbol>,
}

/// One entry of a trie node's shared runtime stack: the level of the
/// open element it stands for. The parent-stack pointer a TwigM entry
/// would also carry is not stored — it is derived from the parent's
/// stack height at plan time and handed to the groups in the
/// [`TriePush`], never read back.
type TrieEntry = u32;

/// A main-path push decided by [`StepTrie::advance`]: trie node, its step
/// depth (1-based, so `depth - 1` indexes a group's main-path machine
/// nodes) and the parent-stack pointer the new entry carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriePush {
    /// The trie node that pushed.
    pub node: u32,
    /// 1-based step depth of the node.
    pub depth: u32,
    /// Parent-stack pointer for the new entry.
    pub ptr: u32,
}

/// Per-run counters of the shared-prefix runtime, reset by
/// [`StepTrie::begin_document`] and surfaced through
/// [`crate::stats::PlanStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixRunStats {
    /// Step checks executed against the trie (one per event × live node).
    pub steps_executed: u64,
    /// Per-group step checks avoided (`routes - 1` per executed check).
    pub steps_saved: u64,
    /// Per-group entry deliveries fanned out from trie pushes.
    pub forks: u64,
    /// Current live shared-stack entries.
    pub live_entries: u64,
    /// Peak of `live_entries`.
    pub peak_entries: u64,
}

impl PrefixRunStats {
    /// Peak bytes of the shared trie stacks.
    pub fn peak_stack_bytes(&self) -> u64 {
        self.peak_entries * std::mem::size_of::<TrieEntry>() as u64
    }
}

#[derive(Debug)]
struct TrieNode {
    /// Edge label from the parent (meaningless for the root).
    key: StepKey,
    /// Parent node; `None` for the root.
    parent: Option<usize>,
    /// 1-based step depth (0 for the root).
    depth: u32,
    /// Child node indices (small fan-out: linear scan beats hashing).
    children: Vec<usize>,
    /// Plan groups whose main path ends exactly here.
    terminals: Vec<usize>,
    /// Active plan groups whose main path passes through this node
    /// (including those ending here), **insertion order** — a recycled
    /// low slot registered after higher ones re-enters at the tail, so
    /// this is *not* sorted; consumers that need ascending-gid visit
    /// order (the engine's merge-walk) sort the expanded plans.
    routes: Vec<u32>,
    /// The shared runtime stack (prefix-shared execution only; empty
    /// between documents).
    stack: Vec<TrieEntry>,
}

/// A trie over location-step paths, nodes addressed by dense indices.
#[derive(Debug)]
pub struct StepTrie {
    /// `nodes[0]` is the root (no incoming edge).
    nodes: Vec<TrieNode>,
    /// Symbol index → trie nodes whose step tests that name.
    by_symbol: Vec<Vec<u32>>,
    /// Trie nodes whose step is the wildcard `*`.
    wildcards: Vec<u32>,
    /// Runtime counters of the current (or last) document run.
    run_stats: PrefixRunStats,
}

impl StepTrie {
    /// An empty trie (root only).
    pub fn new() -> Self {
        StepTrie {
            nodes: vec![TrieNode {
                key: StepKey { axis: Axis::Child, name: None },
                parent: None,
                depth: 0,
                children: Vec::new(),
                terminals: Vec::new(),
                routes: Vec::new(),
                stack: Vec::new(),
            }],
            by_symbol: Vec::new(),
            wildcards: Vec::new(),
            run_stats: PrefixRunStats::default(),
        }
    }

    /// Descends `steps` from the root, creating missing nodes, and returns
    /// the terminal node's index. Does **not** change routes — the planner
    /// marks a route only when a path gains a distinct plan group.
    pub fn insert_path(&mut self, steps: &[StepKey]) -> usize {
        let mut cur = 0usize;
        for &step in steps {
            cur = match self.nodes[cur].children.iter().find(|&&c| self.nodes[c].key == step) {
                Some(&c) => c,
                None => {
                    let id = self.nodes.len();
                    let depth = self.nodes[cur].depth + 1;
                    self.nodes.push(TrieNode {
                        key: step,
                        parent: Some(cur),
                        depth,
                        children: Vec::new(),
                        terminals: Vec::new(),
                        routes: Vec::new(),
                        stack: Vec::new(),
                    });
                    self.nodes[cur].children.push(id);
                    match step.name {
                        Some(sym) => {
                            if self.by_symbol.len() <= sym.index() {
                                self.by_symbol.resize(sym.index() + 1, Vec::new());
                            }
                            self.by_symbol[sym.index()].push(id as u32);
                        }
                        None => self.wildcards.push(id as u32),
                    }
                    id
                }
            };
        }
        cur
    }

    /// The plan groups terminating at `node`.
    pub fn terminals(&self, node: usize) -> &[usize] {
        &self.nodes[node].terminals
    }

    /// Records `group` as terminating at `node` and routes it on every
    /// node from `node` up to the root.
    pub fn add_group(&mut self, node: usize, group: usize) {
        self.nodes[node].terminals.push(group);
        let mut cur = Some(node);
        while let Some(i) = cur {
            if i != 0 {
                self.nodes[i].routes.push(group as u32);
            }
            cur = self.nodes[i].parent;
        }
    }

    /// Unrecords `group` from `node` (the group went inactive), splicing
    /// it out of the route lists up to the root. Trie nodes are never
    /// deleted; an empty suffix simply stops counting as shared — and,
    /// with no routes left, [`StepTrie::advance`] stops touching its
    /// runtime stack entirely.
    pub fn remove_group(&mut self, node: usize, group: usize) {
        let terminals = &mut self.nodes[node].terminals;
        if let Some(pos) = terminals.iter().position(|&g| g == group) {
            terminals.swap_remove(pos);
            let mut cur = Some(node);
            while let Some(i) = cur {
                if i != 0 {
                    let routes = &mut self.nodes[i].routes;
                    let at = routes
                        .iter()
                        .position(|&g| g as usize == group)
                        .expect("terminal group is routed on its whole path");
                    routes.remove(at); // order-preserving (determinism, not sortedness)
                }
                cur = self.nodes[i].parent;
            }
        }
    }

    /// The active groups routed through `node`, ascending.
    pub(crate) fn routed(&self, node: usize) -> &[u32] {
        &self.nodes[node].routes
    }

    /// Number of active groups whose main path passes through `node`.
    pub fn route_count(&self, node: usize) -> usize {
        self.nodes[node].routes.len()
    }

    /// Whether `group` is routed anywhere in the trie (linear scan; meant
    /// for tests asserting retired groups leave no orphan state behind).
    pub fn is_routed(&self, group: usize) -> bool {
        self.nodes.iter().any(|n| n.routes.iter().any(|&g| g as usize == group))
    }

    /// The node ids on the root→`node` path (root excluded), in step
    /// order — position `i` is the node at depth `i + 1`.
    pub(crate) fn path_of(&self, node: usize) -> Vec<u32> {
        let mut path = Vec::with_capacity(self.nodes[node].depth as usize);
        let mut cur = node;
        while let Some(p) = self.nodes[cur].parent {
            path.push(cur as u32);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Number of step nodes (the root does not count: it is not a step).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether no step has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Step nodes on the main path of **more than one** active plan group
    /// — the prefix structure the trie shares instead of duplicating.
    pub fn shared_nodes(&self) -> usize {
        self.nodes.iter().skip(1).filter(|n| n.routes.len() >= 2).count()
    }

    /// Approximate heap bytes of the trie's *plan* structure. Runtime
    /// stack capacity is deliberately excluded: it varies over a run, and
    /// plan statistics must be identical whether they are snapshotted
    /// before a sharded session or after a single-threaded run — the
    /// runtime side is reported separately as
    /// [`PrefixRunStats::peak_stack_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = self.nodes.capacity() * size_of::<TrieNode>();
        for n in &self.nodes {
            bytes += (n.children.capacity() + n.terminals.capacity()) * size_of::<usize>();
            bytes += n.routes.capacity() * size_of::<u32>();
        }
        for list in &self.by_symbol {
            bytes += size_of::<Vec<u32>>() + list.capacity() * size_of::<u32>();
        }
        bytes += self.wildcards.capacity() * size_of::<u32>();
        bytes as u64
    }

    // ------------------------------------------------------------- //
    // Runtime (prefix-shared execution)
    // ------------------------------------------------------------- //

    /// Clears every shared stack and resets the run counters — called at
    /// the start of each document run, mirroring the machines' resets.
    pub fn begin_document(&mut self) {
        for n in &mut self.nodes {
            n.stack.clear();
        }
        self.run_stats = PrefixRunStats::default();
    }

    /// Counters of the current (or last completed) document run.
    pub fn run_stats(&self) -> PrefixRunStats {
        self.run_stats
    }

    /// Total live shared-stack entries (0 between well-formed documents).
    pub fn live_entries(&self) -> usize {
        self.nodes.iter().map(|n| n.stack.len()).sum()
    }

    /// A `startElement` against the shared stacks: checks every live trie
    /// node whose step tests `sym` (plus the wildcard nodes) against its
    /// parent's **pre-event** stack — exactly the TwigM push rule — then
    /// applies the pushes and appends them to `pushed` for the engine to
    /// fan out to the routed groups. One check per distinct trie node,
    /// however many groups share it.
    pub(crate) fn advance(&mut self, sym: Option<Symbol>, level: u32, pushed: &mut Vec<TriePush>) {
        let base = pushed.len();
        let named: &[u32] =
            sym.and_then(|s| self.by_symbol.get(s.index())).map(Vec::as_slice).unwrap_or(&[]);
        // Plan phase: decide every push against pre-event stacks. `named`
        // and `wildcards` are disjoint and a node appears in each at most
        // once, so no node is checked (or pushed) twice.
        for list in [named, &self.wildcards] {
            for &ni in list {
                let node = &self.nodes[ni as usize];
                let routes = node.routes.len();
                if routes == 0 {
                    continue; // stale path: every group on it retired
                }
                self.run_stats.steps_executed += 1;
                self.run_stats.steps_saved += routes as u64 - 1;
                let ptr = match node.parent {
                    Some(0) | None => match node.key.axis {
                        Axis::Child if level != 1 => continue,
                        _ => 0, // ptr unused at the path root
                    },
                    Some(p) => {
                        let pstack = &self.nodes[p].stack;
                        match node.key.axis {
                            Axis::Child => match pstack.last() {
                                Some(&top) if top + 1 == level => pstack.len() as u32 - 1,
                                _ => continue,
                            },
                            Axis::Descendant => {
                                if pstack.is_empty() {
                                    continue;
                                }
                                pstack.len() as u32 - 1
                            }
                        }
                    }
                };
                pushed.push(TriePush { node: ni, depth: node.depth, ptr });
            }
        }
        // Apply phase.
        for p in &pushed[base..] {
            let node = &mut self.nodes[p.node as usize];
            self.run_stats.forks += node.routes.len() as u64;
            node.stack.push(level);
            self.run_stats.live_entries += 1;
            self.run_stats.peak_entries =
                self.run_stats.peak_entries.max(self.run_stats.live_entries);
        }
    }

    /// Pops the top entry of `node`'s shared stack — the `endElement`
    /// counterpart of a [`TriePush`] recorded at the matching start tag.
    pub(crate) fn retreat_one(&mut self, node: u32, level: u32) {
        let top = self.nodes[node as usize].stack.pop();
        debug_assert_eq!(top, Some(level), "shared stacks pop in start-tag pairing order");
        self.run_stats.live_entries -= 1;
    }
}

impl Default for StepTrie {
    fn default() -> Self {
        StepTrie::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn key(interner: &mut Interner, axis: Axis, name: Option<&str>) -> StepKey {
        StepKey { axis, name: name.map(|n| interner.intern(n)) }
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        // /a/b and /a/c share the /a node: 3 nodes total, not 4.
        let ab = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("b"))];
        let ac = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("c"))];
        let n_ab = t.insert_path(&ab);
        let n_ac = t.insert_path(&ac);
        assert_ne!(n_ab, n_ac);
        assert_eq!(t.len(), 3);
        // Re-inserting an existing path allocates nothing.
        assert_eq!(t.insert_path(&ab), n_ab);
        assert_eq!(t.len(), 3);
        assert_eq!(t.path_of(n_ab).len(), 2);
    }

    #[test]
    fn axis_distinguishes_edges() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let child = [key(&mut i, Axis::Child, Some("a"))];
        let desc = [key(&mut i, Axis::Descendant, Some("a"))];
        assert_ne!(t.insert_path(&child), t.insert_path(&desc));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wildcard_is_its_own_edge() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let named = [key(&mut i, Axis::Descendant, Some("a"))];
        let wild = [key(&mut i, Axis::Descendant, None)];
        assert_ne!(t.insert_path(&named), t.insert_path(&wild));
    }

    #[test]
    fn routes_track_active_groups() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let ab = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("b"))];
        let ac = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("c"))];
        let n_ab = t.insert_path(&ab);
        let n_ac = t.insert_path(&ac);
        t.add_group(n_ab, 0);
        assert_eq!(t.shared_nodes(), 0);
        t.add_group(n_ac, 1);
        // /a now routes two groups; the b/c leaves route one each.
        assert_eq!(t.shared_nodes(), 1);
        assert_eq!(t.terminals(n_ab), &[0]);
        assert!(t.is_routed(0) && t.is_routed(1));
        t.remove_group(n_ab, 0);
        assert_eq!(t.shared_nodes(), 0);
        assert!(t.terminals(n_ab).is_empty());
        assert!(!t.is_routed(0), "retired group leaves no route behind");
        // Removing an unknown group is a no-op.
        t.remove_group(n_ab, 99);
        assert_eq!(t.shared_nodes(), 0);
    }

    #[test]
    fn empty_path_terminates_at_root() {
        let mut t = StepTrie::new();
        assert_eq!(t.insert_path(&[]), 0);
        assert!(t.is_empty());
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn advance_mirrors_machine_push_rules() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        // //a/b : descendant a, child b.
        let path = [key(&mut i, Axis::Descendant, Some("a")), key(&mut i, Axis::Child, Some("b"))];
        let n_b = t.insert_path(&path);
        let n_a = t.path_of(n_b)[0] as usize;
        t.add_group(n_b, 0);
        let a = i.lookup("a");
        let b = i.lookup("b");
        t.begin_document();
        let mut pushed = Vec::new();
        // <a> at level 1: a pushes (descendant root), b has no witness.
        t.advance(a, 1, &mut pushed);
        assert_eq!(pushed, [TriePush { node: n_a as u32, depth: 1, ptr: 0 }]);
        // <x> at level 2: nothing matches.
        pushed.clear();
        t.advance(None, 2, &mut pushed);
        assert!(pushed.is_empty());
        // <b> at level 2 inside <x>? No — b needs a as *direct* parent.
        pushed.clear();
        t.advance(b, 3, &mut pushed);
        assert!(pushed.is_empty(), "child axis needs level + 1 witness");
        // </x>, then <b> at level 2: direct child of the open a.
        pushed.clear();
        t.advance(b, 2, &mut pushed);
        assert_eq!(pushed, [TriePush { node: n_b as u32, depth: 2, ptr: 0 }]);
        t.retreat_one(n_b as u32, 2);
        t.retreat_one(n_a as u32, 1);
        assert_eq!(t.live_entries(), 0);
        let stats = t.run_stats();
        assert_eq!(stats.live_entries, 0);
        assert_eq!(stats.peak_entries, 2);
        // One check per advance that named a live node: <a>, <b>, <b>.
        assert_eq!(stats.steps_executed, 3);
        assert_eq!(stats.forks, 2, "each push forks to the single routed group");
    }

    #[test]
    fn advance_skips_unrouted_nodes() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let path = [key(&mut i, Axis::Descendant, Some("a"))];
        let n_a = t.insert_path(&path);
        let a = i.lookup("a");
        t.begin_document();
        let mut pushed = Vec::new();
        t.advance(a, 1, &mut pushed);
        assert!(pushed.is_empty(), "no routed group: the node is dormant");
        assert_eq!(t.run_stats().steps_executed, 0);
        t.add_group(n_a, 3);
        t.advance(a, 1, &mut pushed);
        assert_eq!(pushed.len(), 1);
        assert_eq!(t.run_stats().steps_executed, 1);
    }
}
