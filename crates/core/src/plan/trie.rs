//! The shared-prefix **step trie**: one node per distinct location-step
//! prefix across every registered query.
//!
//! Thousands of realistic standing queries overlap heavily — `/site/…`
//! subscriptions in an auction feed, `//ProteinEntry/…` in the protein
//! stream. The trie materializes that overlap: a query's main path
//! descends edge by edge, each edge labeled by a [`StepKey`] (axis +
//! interned name test), so queries sharing a `/a/b//c…` prefix share trie
//! nodes. Terminal nodes carry the plan groups whose main path ends
//! there, which makes the trie the planner's **grouping index**: an
//! incoming query walks symbols (integer comparisons, no hashing of the
//! whole query) and only then compares canonical keys against the few
//! groups at its terminal.

use vitex_xpath::Axis;

use crate::intern::Symbol;

/// The label of a trie edge: one location step of a query's main path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepKey {
    /// Axis of the step.
    pub axis: Axis,
    /// Interned name test; `None` is the wildcard `*`.
    pub name: Option<Symbol>,
}

#[derive(Debug)]
struct TrieNode {
    /// Edge label from the parent (meaningless for the root).
    key: StepKey,
    /// Parent node; `None` for the root.
    parent: Option<usize>,
    /// Child node indices (small fan-out: linear scan beats hashing).
    children: Vec<usize>,
    /// Plan groups whose main path ends exactly here.
    terminals: Vec<usize>,
    /// Active plan groups whose main path passes through this node
    /// (including those ending here).
    routes: u32,
}

/// A trie over location-step paths, nodes addressed by dense indices.
#[derive(Debug)]
pub struct StepTrie {
    /// `nodes[0]` is the root (no incoming edge).
    nodes: Vec<TrieNode>,
}

impl StepTrie {
    /// An empty trie (root only).
    pub fn new() -> Self {
        StepTrie {
            nodes: vec![TrieNode {
                key: StepKey { axis: Axis::Child, name: None },
                parent: None,
                children: Vec::new(),
                terminals: Vec::new(),
                routes: 0,
            }],
        }
    }

    /// Descends `steps` from the root, creating missing nodes, and returns
    /// the terminal node's index. Does **not** change route counts — the
    /// planner marks a route only when a path gains a distinct plan group.
    pub fn insert_path(&mut self, steps: &[StepKey]) -> usize {
        let mut cur = 0usize;
        for &step in steps {
            cur = match self.nodes[cur].children.iter().find(|&&c| self.nodes[c].key == step) {
                Some(&c) => c,
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(TrieNode {
                        key: step,
                        parent: Some(cur),
                        children: Vec::new(),
                        terminals: Vec::new(),
                        routes: 0,
                    });
                    self.nodes[cur].children.push(id);
                    id
                }
            };
        }
        cur
    }

    /// The plan groups terminating at `node`.
    pub fn terminals(&self, node: usize) -> &[usize] {
        &self.nodes[node].terminals
    }

    /// Records `group` as terminating at `node` and increments route
    /// counts from `node` up to the root.
    pub fn add_group(&mut self, node: usize, group: usize) {
        self.nodes[node].terminals.push(group);
        let mut cur = Some(node);
        while let Some(i) = cur {
            self.nodes[i].routes += 1;
            cur = self.nodes[i].parent;
        }
    }

    /// Unrecords `group` from `node` (the group went inactive) and
    /// decrements route counts up to the root. Trie nodes are never
    /// deleted; an empty suffix simply stops counting as shared.
    pub fn remove_group(&mut self, node: usize, group: usize) {
        let terminals = &mut self.nodes[node].terminals;
        if let Some(pos) = terminals.iter().position(|&g| g == group) {
            terminals.swap_remove(pos);
            let mut cur = Some(node);
            while let Some(i) = cur {
                debug_assert!(self.nodes[i].routes > 0, "route underflow");
                self.nodes[i].routes -= 1;
                cur = self.nodes[i].parent;
            }
        }
    }

    /// Number of step nodes (the root does not count: it is not a step).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether no step has been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Step nodes on the main path of **more than one** active plan group
    /// — the prefix structure the trie shares instead of duplicating.
    pub fn shared_nodes(&self) -> usize {
        self.nodes.iter().skip(1).filter(|n| n.routes >= 2).count()
    }

    /// Approximate heap bytes of the trie.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = self.nodes.capacity() * size_of::<TrieNode>();
        for n in &self.nodes {
            bytes += (n.children.capacity() + n.terminals.capacity()) * size_of::<usize>();
        }
        bytes as u64
    }
}

impl Default for StepTrie {
    fn default() -> Self {
        StepTrie::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn key(interner: &mut Interner, axis: Axis, name: Option<&str>) -> StepKey {
        StepKey { axis, name: name.map(|n| interner.intern(n)) }
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        // /a/b and /a/c share the /a node: 3 nodes total, not 4.
        let ab = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("b"))];
        let ac = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("c"))];
        let n_ab = t.insert_path(&ab);
        let n_ac = t.insert_path(&ac);
        assert_ne!(n_ab, n_ac);
        assert_eq!(t.len(), 3);
        // Re-inserting an existing path allocates nothing.
        assert_eq!(t.insert_path(&ab), n_ab);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn axis_distinguishes_edges() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let child = [key(&mut i, Axis::Child, Some("a"))];
        let desc = [key(&mut i, Axis::Descendant, Some("a"))];
        assert_ne!(t.insert_path(&child), t.insert_path(&desc));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wildcard_is_its_own_edge() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let named = [key(&mut i, Axis::Descendant, Some("a"))];
        let wild = [key(&mut i, Axis::Descendant, None)];
        assert_ne!(t.insert_path(&named), t.insert_path(&wild));
    }

    #[test]
    fn routes_track_active_groups() {
        let mut i = Interner::new();
        let mut t = StepTrie::new();
        let ab = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("b"))];
        let ac = [key(&mut i, Axis::Child, Some("a")), key(&mut i, Axis::Child, Some("c"))];
        let n_ab = t.insert_path(&ab);
        let n_ac = t.insert_path(&ac);
        t.add_group(n_ab, 0);
        assert_eq!(t.shared_nodes(), 0);
        t.add_group(n_ac, 1);
        // /a now routes two groups; the b/c leaves route one each.
        assert_eq!(t.shared_nodes(), 1);
        assert_eq!(t.terminals(n_ab), &[0]);
        t.remove_group(n_ab, 0);
        assert_eq!(t.shared_nodes(), 0);
        assert!(t.terminals(n_ab).is_empty());
        // Removing an unknown group is a no-op.
        t.remove_group(n_ab, 99);
        assert_eq!(t.shared_nodes(), 0);
    }

    #[test]
    fn empty_path_terminates_at_root() {
        let mut t = StepTrie::new();
        assert_eq!(t.insert_path(&[]), 0);
        assert!(t.is_empty());
        assert!(t.approx_bytes() > 0);
    }
}
