//! Query solutions ("matches") emitted by the machine.

use std::fmt;
use std::sync::Arc;

use vitex_xmlsax::pos::ByteSpan;

/// Document-order node identifier assigned by the engine: every element,
/// attribute and text node gets the next integer as it is encountered.
/// (The paper subscripts nodes by line number — `cell_8` — for the same
/// purpose; byte-offset-free ids keep matches comparable across
/// serializations.)
pub type NodeId = u64;

/// A registered standing query's handle in the multi-query engine.
///
/// Ids are dense registration indices and stay valid for the engine's
/// lifetime — [`crate::multi::MultiEngine::remove_query`] retires an id
/// without renumbering the rest. Lives here (with [`NodeId`]) rather than
/// in `multi` because the plan layer attaches subscriber lists to shared
/// machines without otherwise depending on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

/// What kind of document node a match binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// An element node.
    Element,
    /// An attribute node.
    Attribute,
    /// A text node.
    Text,
}

/// One query solution: a binding of the query's result node.
///
/// The string payloads (`name`, `value`) are `Arc`-backed: cloning a
/// `Match` bumps two reference counts instead of copying heap text, so a
/// shared plan group fanning one solution out to thousands of subscribers
/// — or a shard worker shipping results across a thread boundary — never
/// deep-copies the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Kind of the matched node.
    pub kind: MatchKind,
    /// Document-order id of the matched node.
    pub node: NodeId,
    /// Element name or attribute name (`None` for text nodes).
    pub name: Option<Arc<str>>,
    /// Byte span in the source stream: the whole element for elements, the
    /// owning start tag for attributes, the raw text run for text nodes.
    /// Slicing a retained document with this span yields the result
    /// *fragment* the paper's system outputs.
    pub span: ByteSpan,
    /// Attribute value or text content (`None` for elements — their content
    /// is identified by `span` so the machine's memory stays independent of
    /// match sizes).
    pub value: Option<Arc<str>>,
    /// Depth of the matched node's element context (the element itself for
    /// element matches; the owner element for attributes and text).
    pub level: u32,
}

impl Match {
    /// Sort key for document order.
    pub fn document_order_key(&self) -> NodeId {
        self.node
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MatchKind::Element => {
                write!(
                    f,
                    "element <{}> #{} @{}",
                    self.name.as_deref().unwrap_or("?"),
                    self.node,
                    self.span
                )
            }
            MatchKind::Attribute => write!(
                f,
                "attribute @{}={:?} #{}",
                self.name.as_deref().unwrap_or("?"),
                self.value.as_deref().unwrap_or(""),
                self.node
            ),
            MatchKind::Text => {
                write!(f, "text {:?} #{}", self.value.as_deref().unwrap_or(""), self.node)
            }
        }
    }
}

/// Sorts matches into document order (engine emission order is completion
/// order, which is generally different).
pub fn sort_document_order(matches: &mut [Match]) {
    matches.sort_by_key(|m| m.node);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(node: NodeId) -> Match {
        Match {
            kind: MatchKind::Element,
            node,
            name: Some("a".into()),
            span: ByteSpan::new(0, 1),
            value: None,
            level: 1,
        }
    }

    #[test]
    fn sorting_orders_by_node_id() {
        let mut ms = vec![m(5), m(1), m(3)];
        sort_document_order(&mut ms);
        let ids: Vec<NodeId> = ms.iter().map(|m| m.node).collect();
        assert_eq!(ids, [1, 3, 5]);
    }

    #[test]
    fn display_formats() {
        assert!(m(7).to_string().contains("element <a> #7"));
        let attr = Match {
            kind: MatchKind::Attribute,
            node: 2,
            name: Some("id".into()),
            span: ByteSpan::new(0, 4),
            value: Some("x".into()),
            level: 1,
        };
        assert_eq!(attr.to_string(), "attribute @id=\"x\" #2");
        let text = Match {
            kind: MatchKind::Text,
            node: 3,
            name: None,
            span: ByteSpan::new(0, 4),
            value: Some("hi".into()),
            level: 1,
        };
        assert_eq!(text.to_string(), "text \"hi\" #3");
    }
}
