//! The paper's strawman: explicit pattern-match enumeration.
//!
//! *"This could be done naively by explicitly storing pattern matches, and
//! enumerating them to test predicates. However, the number of pattern
//! matches can be exponential."* (ViteX §1)
//!
//! This module implements exactly that strawman, honestly: a streaming
//! evaluator that materializes every partial **embedding** of the query
//! tree into the open document (the paper's
//! `⟨section_i, table_j, cell_8⟩` tuples) and updates/tests each of them
//! individually as events arrive. On recursive data the embedding count —
//! and therefore both memory and per-event time — grows exponentially with
//! the query size, which experiment E3 measures against TwigM's polynomial
//! stacks.
//!
//! A configurable cap aborts evaluation when the embedding count explodes,
//! so benchmarks can report "exceeded N" instead of hanging.

use std::collections::HashSet;
use std::io::Read;

use vitex_core::predicate;
use vitex_xmlsax::{XmlError, XmlEvent, XmlReader};
use vitex_xpath::query_tree::{NodeKind, QueryTree};
use vitex_xpath::{Axis, CmpOp, Literal};

/// Limits for the strawman.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Abort when the live embedding count exceeds this.
    pub max_embeddings: usize,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig { max_embeddings: 1_000_000 }
    }
}

/// Failure modes of the strawman.
#[derive(Debug)]
pub enum NaiveError {
    /// The stream was malformed.
    Xml(XmlError),
    /// The embedding count exceeded [`NaiveConfig::max_embeddings`] — the
    /// exponential blowup the paper predicts.
    Blowup {
        /// Live embeddings at the moment of the abort.
        embeddings: usize,
    },
}

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveError::Xml(e) => write!(f, "XML error: {e}"),
            NaiveError::Blowup { embeddings } => {
                write!(f, "pattern-match blowup: {embeddings} embeddings exceed the cap")
            }
        }
    }
}

impl std::error::Error for NaiveError {}

impl From<XmlError> for NaiveError {
    fn from(e: XmlError) -> Self {
        NaiveError::Xml(e)
    }
}

/// What a run reports.
#[derive(Debug, Clone)]
pub struct NaiveOutcome {
    /// Result node ids (document order), deduplicated.
    pub matches: Vec<u64>,
    /// Peak number of simultaneously stored embeddings — the quantity the
    /// paper's complexity argument is about.
    pub peak_embeddings: usize,
    /// Total embeddings ever created.
    pub embeddings_created: u64,
}

// ------------------------------------------------------------------ //
// Compiled query shape
// ------------------------------------------------------------------ //

/// Requirement bit positions for one element query node.
#[allow(clippy::type_complexity)]
#[derive(Debug, Clone, Default)]
struct NodeReqs {
    /// Total requirement bits (element children + attr/text preds +
    /// result capture).
    count: u32,
    /// Attribute predicates: (bit, name test, comparison).
    attr_preds: Vec<(u32, Option<String>, Option<(CmpOp, Literal)>)>,
    /// Text predicates: (bit, comparison).
    text_preds: Vec<(u32, Option<(CmpOp, Literal)>)>,
    /// Attribute result capture bit + name test.
    attr_result: Option<(u32, Option<String>)>,
    /// Text result capture bit.
    text_result: Option<u32>,
}

/// One element query node, flattened.
#[derive(Debug, Clone)]
struct ENode {
    axis: Axis,
    parent: Option<usize>,
    /// This node's requirement bit within its parent.
    parent_bit: Option<u32>,
    name: Option<String>,
    comparison: Option<(CmpOp, Literal)>,
    reqs: NodeReqs,
    is_root: bool,
    is_result: bool,
}

struct Compiled {
    nodes: Vec<ENode>,
    needs_string_values: bool,
}

fn compile(tree: &QueryTree) -> Compiled {
    use std::collections::HashMap;
    let mut nodes: Vec<ENode> = Vec::new();
    let mut index: HashMap<usize, usize> = HashMap::new();
    let result_qid = tree.result();
    for qnode in tree.nodes() {
        match &qnode.kind {
            NodeKind::Element { name } => {
                let parent = qnode.parent.map(|p| index[&p]);
                let idx = nodes.len();
                index.insert(qnode.id, idx);
                let parent_bit = parent.map(|p| {
                    let bit = nodes[p].reqs.count;
                    nodes[p].reqs.count += 1;
                    bit
                });
                nodes.push(ENode {
                    axis: qnode.axis,
                    parent,
                    parent_bit,
                    name: name.clone(),
                    comparison: qnode.comparison.clone(),
                    reqs: NodeReqs::default(),
                    is_root: qnode.parent.is_none(),
                    is_result: qnode.id == result_qid,
                });
            }
            NodeKind::Attribute { name } => {
                let p = index[&qnode.parent.expect("attributes have parents")];
                let bit = nodes[p].reqs.count;
                nodes[p].reqs.count += 1;
                if qnode.id == result_qid {
                    nodes[p].reqs.attr_result = Some((bit, name.clone()));
                } else {
                    nodes[p].reqs.attr_preds.push((bit, name.clone(), qnode.comparison.clone()));
                }
            }
            NodeKind::Text => {
                let p = index[&qnode.parent.expect("text nodes have parents")];
                let bit = nodes[p].reqs.count;
                nodes[p].reqs.count += 1;
                if qnode.id == result_qid {
                    nodes[p].reqs.text_result = Some(bit);
                } else {
                    nodes[p].reqs.text_preds.push((bit, qnode.comparison.clone()));
                }
            }
        }
    }
    let needs_string_values = nodes.iter().any(|n| n.comparison.is_some());
    Compiled { nodes, needs_string_values }
}

// ------------------------------------------------------------------ //
// Embeddings
// ------------------------------------------------------------------ //

#[derive(Debug, Clone, Copy, PartialEq)]
struct Bind {
    doc: u64,
    level: u32,
    open: bool,
}

/// One explicitly stored pattern match (possibly partial).
#[derive(Debug, Clone)]
struct Embedding {
    bindings: Box<[Option<Bind>]>,
    /// Per element query node: bitmask of satisfied requirements.
    flags: Box<[u64]>,
    /// Captured result node ids (attr/text results may capture several).
    results: Vec<u64>,
}

impl Embedding {
    fn new(n: usize) -> Self {
        Embedding {
            bindings: vec![None; n].into_boxed_slice(),
            flags: vec![0u64; n].into_boxed_slice(),
            results: Vec::new(),
        }
    }

    fn complete_at(&self, q: usize, node: &ENode) -> bool {
        let mask = if node.reqs.count >= 64 {
            u64::MAX // queries with ≥64 requirements per node are absurd; saturate
        } else {
            (1u64 << node.reqs.count) - 1
        };
        self.flags[q] & mask == mask
    }
}

/// The strawman evaluator.
pub struct NaiveEvaluator {
    compiled: Compiled,
    config: NaiveConfig,
}

impl NaiveEvaluator {
    /// Compiles a query tree.
    pub fn new(tree: &QueryTree, config: NaiveConfig) -> Self {
        NaiveEvaluator { compiled: compile(tree), config }
    }

    /// Runs the strawman over a stream.
    #[allow(clippy::needless_range_loop)] // q indexes `nodes` and `emb` in parallel
    pub fn run<R: Read>(&self, mut reader: XmlReader<R>) -> Result<NaiveOutcome, NaiveError> {
        let nodes = &self.compiled.nodes;
        let n = nodes.len();
        let mut embeddings: Vec<Embedding> = Vec::new();
        let mut results: HashSet<u64> = HashSet::new();
        let mut peak = 0usize;
        let mut created = 0u64;
        // Global open-element stack for ids/levels/string values.
        struct Open {
            id: u64,
            text: Option<String>,
        }
        let mut open: Vec<Open> = Vec::new();
        let mut next_id: u64 = 0;
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement(e) => {
                    let elem_id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    // Extend embeddings with new bindings. The set must be
                    // closed under *subsets* of the applicable bindings —
                    // one element may bind several query nodes at once
                    // (e.g. both the predicate and the result `b` of
                    // `//a[b]/b`) — so embeddings created for earlier query
                    // nodes in this same event are extension candidates
                    // too. Level checks prevent an element from acting as
                    // its own ancestor.
                    for q in 0..n {
                        let node = &nodes[q];
                        let name_ok = node.name.as_deref().is_none_or(|t| t == e.name.as_str());
                        if !name_ok {
                            continue;
                        }
                        if node.is_root {
                            let axis_ok = match node.axis {
                                Axis::Child => e.level == 1,
                                Axis::Descendant => true,
                            };
                            if axis_ok {
                                let mut emb = Embedding::new(n);
                                emb.bindings[q] =
                                    Some(Bind { doc: elem_id, level: e.level, open: true });
                                bind_inline(&mut emb, q, node, &e, elem_id + 1);
                                embeddings.push(emb);
                                created += 1;
                            }
                            continue;
                        }
                        let p = node.parent.expect("non-root nodes have parents");
                        let snapshot = embeddings.len();
                        for ei in 0..snapshot {
                            let parent_bind = match embeddings[ei].bindings[p] {
                                Some(b) if b.open => b,
                                _ => continue,
                            };
                            if embeddings[ei].bindings[q].is_some() {
                                continue; // q already bound in this embedding
                            }
                            let axis_ok = match node.axis {
                                Axis::Child => parent_bind.level + 1 == e.level,
                                Axis::Descendant => parent_bind.level < e.level,
                            };
                            if !axis_ok {
                                continue;
                            }
                            let mut emb = embeddings[ei].clone();
                            emb.bindings[q] =
                                Some(Bind { doc: elem_id, level: e.level, open: true });
                            bind_inline(&mut emb, q, node, &e, elem_id + 1);
                            embeddings.push(emb);
                            created += 1;
                        }
                    }
                    peak = peak.max(embeddings.len());
                    if embeddings.len() > self.config.max_embeddings {
                        return Err(NaiveError::Blowup { embeddings: embeddings.len() });
                    }
                    open.push(Open {
                        id: elem_id,
                        text: self.compiled.needs_string_values.then(String::new),
                    });
                }
                XmlEvent::Characters(c) => {
                    let text_id = next_id;
                    next_id += 1;
                    if self.compiled.needs_string_values {
                        for o in open.iter_mut() {
                            if let Some(buf) = &mut o.text {
                                buf.push_str(&c.text);
                            }
                        }
                    }
                    // Text predicates / result capture: enumerate all
                    // embeddings (this is the strawman's cost).
                    for emb in embeddings.iter_mut() {
                        for q in 0..n {
                            let node = &nodes[q];
                            if node.reqs.text_preds.is_empty() && node.reqs.text_result.is_none() {
                                continue;
                            }
                            let bound_here = matches!(
                                emb.bindings[q],
                                Some(b) if b.open && b.level == c.level
                            );
                            if !bound_here {
                                continue;
                            }
                            for (bit, cmp) in &node.reqs.text_preds {
                                if cmp_opt(cmp, &c.text) {
                                    emb.flags[q] |= 1 << bit;
                                }
                            }
                            if let Some(bit) = node.reqs.text_result {
                                emb.flags[q] |= 1 << bit;
                                emb.results.push(text_id);
                            }
                        }
                    }
                }
                XmlEvent::EndElement(_) => {
                    let closing = open.pop().expect("balanced");
                    // Enumerate every stored match and update it — the
                    // paper's "enumerating them to test predicates".
                    let mut i = 0;
                    while i < embeddings.len() {
                        let mut kill = false;
                        let mut finished_root = false;
                        for q in 0..n {
                            let bind = match embeddings[i].bindings[q] {
                                Some(b) if b.open && b.doc == closing.id => b,
                                _ => continue,
                            };
                            let node = &nodes[q];
                            // Close the binding.
                            embeddings[i].bindings[q] = Some(Bind { open: false, ..bind });
                            // Local completion: requirements + comparison.
                            let mut ok = embeddings[i].complete_at(q, node);
                            if ok {
                                if let Some((op, lit)) = &node.comparison {
                                    let sv = closing.text.as_deref().unwrap_or("");
                                    ok = predicate::compare(sv, *op, lit);
                                }
                            }
                            if !ok {
                                kill = true;
                                break;
                            }
                            if node.is_result {
                                embeddings[i].results.push(bind.doc);
                            }
                            if let (Some(p), Some(bit)) = (node.parent, node.parent_bit) {
                                embeddings[i].flags[p] |= 1 << bit;
                            }
                            if node.is_root {
                                finished_root = true;
                            }
                        }
                        if kill {
                            embeddings.swap_remove(i);
                        } else if finished_root {
                            for r in embeddings[i].results.drain(..) {
                                results.insert(r);
                            }
                            embeddings.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        let mut matches: Vec<u64> = results.into_iter().collect();
        matches.sort_unstable();
        Ok(NaiveOutcome { matches, peak_embeddings: peak, embeddings_created: created })
    }
}

/// Evaluates attribute predicates / captures attribute results at bind
/// time (attributes arrive with the start tag).
fn bind_inline(
    emb: &mut Embedding,
    q: usize,
    node: &ENode,
    e: &vitex_xmlsax::StartElementEvent,
    attr_id_base: u64,
) {
    for (bit, name, cmp) in &node.reqs.attr_preds {
        let hit = e.attributes.iter().any(|a| {
            name.as_deref().is_none_or(|t| t == a.name.as_str()) && cmp_opt(cmp, &a.value)
        });
        if hit {
            emb.flags[q] |= 1 << bit;
        }
    }
    if let Some((bit, name)) = &node.reqs.attr_result {
        for (i, a) in e.attributes.iter().enumerate() {
            if name.as_deref().is_none_or(|t| t == a.name.as_str()) {
                emb.flags[q] |= 1 << bit;
                emb.results.push(attr_id_base + i as u64);
            }
        }
    }
}

fn cmp_opt(comparison: &Option<(CmpOp, Literal)>, value: &str) -> bool {
    match comparison {
        None => true,
        Some((op, lit)) => predicate::compare(value, *op, lit),
    }
}

/// One-call convenience.
pub fn evaluate_str(
    xml: &str,
    query: &str,
    config: NaiveConfig,
) -> Result<NaiveOutcome, NaiveError> {
    let tree = QueryTree::parse(query).expect("valid query");
    NaiveEvaluator::new(&tree, config).run(XmlReader::from_str(xml))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xml: &str, query: &str) -> Vec<u64> {
        evaluate_str(xml, query, NaiveConfig::default()).unwrap().matches
    }

    #[test]
    fn simple_queries_agree_with_intuition() {
        assert_eq!(ids("<a><b/><c><b/></c></a>", "//b"), [1, 3]);
        assert_eq!(ids("<a><b/><c><b/></c></a>", "/a/b"), [1]);
        assert_eq!(ids("<a><b/></a>", "//x"), Vec::<u64>::new());
    }

    #[test]
    fn predicates_resolved_late() {
        let xml = "<s><cell/><author/></s>";
        assert_eq!(ids(xml, "//s[author]//cell"), [1]);
        let xml2 = "<s><cell/></s>";
        assert_eq!(ids(xml2, "//s[author]//cell"), Vec::<u64>::new());
    }

    #[test]
    fn paper_figure_1() {
        let xml = "<book><section><section><section>\
                   <table><table><table><cell>A</cell></table></table>\
                   <position>B</position></table>\
                   </section></section><author>C</author></section></book>";
        let out =
            evaluate_str(xml, "//section[author]//table[position]//cell", NaiveConfig::default())
                .unwrap();
        assert_eq!(out.matches.len(), 1);
        // The strawman materialized the multiple ⟨section, table, cell⟩
        // tuples the paper talks about.
        assert!(out.peak_embeddings >= 9, "peak={}", out.peak_embeddings);
    }

    #[test]
    fn attribute_results() {
        let xml = "<r><a id=\"x\"/><a/></r>";
        let out = evaluate_str(xml, "//a/@id", NaiveConfig::default()).unwrap();
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    fn text_results_and_predicates() {
        let xml = "<a>hi<b>there</b></a>";
        assert_eq!(ids(xml, "//a/text()").len(), 1);
        assert_eq!(ids(xml, "//a[text() = 'hi']").len(), 1);
        assert_eq!(ids(xml, "//a[text() = 'nope']").len(), 0);
    }

    #[test]
    fn value_comparisons() {
        let xml = "<l><b><y>2003</y></b><b><y>1999</y></b></l>";
        assert_eq!(ids(xml, "//b[y > 2000]").len(), 1);
    }

    #[test]
    fn blowup_is_detected() {
        // Deep recursion + long descendant chain = exponential embeddings.
        let depth = 24;
        let xml = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        let query = "//a//a//a//a//a//a";
        let err = evaluate_str(&xml, query, NaiveConfig { max_embeddings: 10_000 }).unwrap_err();
        assert!(matches!(err, NaiveError::Blowup { .. }));
    }

    #[test]
    fn embedding_count_grows_combinatorially() {
        // C(n, k)-ish growth: measure that deeper nesting inflates peak
        // embeddings much faster than document size.
        let q = "//a//a//a";
        let peak = |depth: usize| {
            let xml = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
            evaluate_str(&xml, q, NaiveConfig::default()).unwrap().peak_embeddings
        };
        let p8 = peak(8);
        let p16 = peak(16);
        assert!(p16 > 4 * p8, "expected superlinear growth: {p8} → {p16}");
    }
}
