//! # vitex-baseline — comparison evaluators for the ViteX reproduction
//!
//! The ViteX paper argues against two alternatives; this crate implements
//! both, plus an in-memory oracle used as the correctness gold standard for
//! the differential test suites:
//!
//! * [`dom`] + [`oracle`] — a conventional **non-streaming** evaluator: the
//!   document is materialized as a tree and the query evaluated with random
//!   access and memoized recursion (polynomial, obviously correct — the
//!   paper's observation that "these challenges are not present in a
//!   non-streaming XML query evaluation algorithm"). Every TwigM result is
//!   differentially checked against it.
//! * [`naive`] — the paper's strawman: a **streaming** evaluator that
//!   explicitly stores pattern matches (embeddings) and enumerates them to
//!   test predicates. Worst-case exponential in the query size on recursive
//!   data; experiment E3 measures exactly that blowup against TwigM's
//!   polynomial bookkeeping.
//! * [`nfa`] — a structure-only lazy-NFA filter (in the spirit of
//!   XFilter/YFilter) for predicate-free path queries, as an ablation
//!   reference point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod naive;
pub mod nfa;
pub mod oracle;

pub use dom::Document;
pub use naive::{NaiveConfig, NaiveError, NaiveEvaluator};
pub use oracle::OracleMatch;
