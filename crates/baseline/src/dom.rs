//! An in-memory document tree for the non-streaming oracle.
//!
//! Node ids are assigned with exactly the same document-order numbering the
//! streaming engine uses (element, then its attributes, then content), so
//! oracle results and TwigM results are directly comparable sets.

use std::io::Read;

use vitex_xmlsax::pos::ByteSpan;
use vitex_xmlsax::{XmlEvent, XmlReader, XmlResult};

/// Arena index of a node.
pub type DomIdx = usize;

/// An attribute of an element node.
#[derive(Debug, Clone, PartialEq)]
pub struct DomAttr {
    /// Document-order id.
    pub id: u64,
    /// Attribute name.
    pub name: String,
    /// Normalized value.
    pub value: String,
}

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum DomKind {
    /// The virtual document root (parent of the root element).
    Root,
    /// An element.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<DomAttr>,
    },
    /// A text node (coalesced, like the streaming side).
    Text {
        /// Decoded content.
        content: String,
    },
}

/// One node in the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct DomNode {
    /// Document-order id (meaningless for the virtual root).
    pub id: u64,
    /// Payload.
    pub kind: DomKind,
    /// Parent arena index (`None` for the virtual root).
    pub parent: Option<DomIdx>,
    /// Child arena indices (elements and text, document order).
    pub children: Vec<DomIdx>,
    /// Element nesting level (root element = 1; virtual root = 0).
    pub level: u32,
    /// Source span (whole element / text run).
    pub span: ByteSpan,
}

impl DomNode {
    /// Element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            DomKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attributes, if this is an element.
    pub fn attributes(&self) -> &[DomAttr] {
        match &self.kind {
            DomKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Whether this is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self.kind, DomKind::Text { .. })
    }

    /// Whether this is an element node.
    pub fn is_element(&self) -> bool {
        matches!(self.kind, DomKind::Element { .. })
    }
}

/// A parsed document.
#[derive(Debug, Clone)]
pub struct Document {
    arena: Vec<DomNode>,
}

impl Document {
    /// Parses a document from a reader.
    pub fn parse_reader<R: Read>(mut reader: XmlReader<R>) -> XmlResult<Document> {
        let mut arena = vec![DomNode {
            id: u64::MAX,
            kind: DomKind::Root,
            parent: None,
            children: Vec::new(),
            level: 0,
            span: ByteSpan::new(0, 0),
        }];
        let mut stack: Vec<DomIdx> = vec![0];
        let mut next_id: u64 = 0;
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement(e) => {
                    let id = next_id;
                    next_id += 1;
                    let attributes = e
                        .attributes
                        .iter()
                        .map(|a| {
                            let aid = next_id;
                            next_id += 1;
                            DomAttr {
                                id: aid,
                                name: a.name.as_str().into(),
                                value: a.value.clone(),
                            }
                        })
                        .collect();
                    let parent = *stack.last().expect("stack holds at least the root");
                    let idx = arena.len();
                    arena.push(DomNode {
                        id,
                        kind: DomKind::Element { name: e.name.as_str().into(), attributes },
                        parent: Some(parent),
                        children: Vec::new(),
                        level: e.level,
                        span: e.span, // widened to the element span at close
                    });
                    arena[parent].children.push(idx);
                    stack.push(idx);
                }
                XmlEvent::EndElement(e) => {
                    let idx = stack.pop().expect("balanced tags");
                    arena[idx].span = e.element_span;
                }
                XmlEvent::Characters(c) => {
                    let id = next_id;
                    next_id += 1;
                    let parent = *stack.last().expect("stack holds at least the root");
                    let idx = arena.len();
                    arena.push(DomNode {
                        id,
                        kind: DomKind::Text { content: c.text.clone() },
                        parent: Some(parent),
                        children: Vec::new(),
                        level: c.level,
                        span: c.span,
                    });
                    arena[parent].children.push(idx);
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        Ok(Document { arena })
    }

    /// Parses a document from a string.
    pub fn parse_str(xml: &str) -> XmlResult<Document> {
        Document::parse_reader(XmlReader::from_str(xml))
    }

    /// The virtual root (index 0).
    pub fn root(&self) -> DomIdx {
        0
    }

    /// The root element, if the document is non-empty.
    pub fn root_element(&self) -> Option<DomIdx> {
        self.arena[0].children.iter().copied().find(|&c| self.arena[c].is_element())
    }

    /// Node by arena index.
    pub fn node(&self, idx: DomIdx) -> &DomNode {
        &self.arena[idx]
    }

    /// All nodes (arena order = document order).
    pub fn nodes(&self) -> &[DomNode] {
        &self.arena
    }

    /// Number of nodes including the virtual root.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether only the virtual root exists.
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 1
    }

    /// Arena indices of all element nodes.
    pub fn elements(&self) -> impl Iterator<Item = DomIdx> + '_ {
        (0..self.arena.len()).filter(move |&i| self.arena[i].is_element())
    }

    /// Is `anc` a strict ancestor of `idx`?
    pub fn is_ancestor(&self, anc: DomIdx, idx: DomIdx) -> bool {
        let mut cur = self.arena[idx].parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.arena[p].parent;
        }
        false
    }

    /// The XPath string-value of a node: its own text, or the concatenation
    /// of all descendant text in document order.
    pub fn string_value(&self, idx: DomIdx) -> String {
        let mut out = String::new();
        self.collect_text(idx, &mut out);
        out
    }

    fn collect_text(&self, idx: DomIdx, out: &mut String) {
        match &self.arena[idx].kind {
            DomKind::Text { content } => out.push_str(content),
            _ => {
                for &c in &self.arena[idx].children {
                    self.collect_text(c, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_tree() {
        let d = Document::parse_str("<a x=\"1\"><b>t</b><c/></a>").unwrap();
        let root_elem = d.root_element().unwrap();
        let a = d.node(root_elem);
        assert_eq!(a.name(), Some("a"));
        assert_eq!(a.id, 0);
        assert_eq!(a.attributes()[0].id, 1);
        assert_eq!(a.attributes()[0].value, "1");
        assert_eq!(a.children.len(), 2);
        let b = d.node(a.children[0]);
        assert_eq!(b.name(), Some("b"));
        assert_eq!(b.id, 2);
        let t = d.node(b.children[0]);
        assert!(t.is_text());
        assert_eq!(t.id, 3);
        let c = d.node(a.children[1]);
        assert_eq!(c.id, 4);
    }

    #[test]
    fn ids_match_engine_numbering() {
        // Engine: a=0, attrs x=1 y=2, b=3, text=4, c=5.
        let d = Document::parse_str("<a x=\"1\" y=\"2\"><b>t</b><c/></a>").unwrap();
        let ids: Vec<u64> = d.nodes().iter().skip(1).map(|n| n.id).collect();
        assert_eq!(ids, [0, 3, 4, 5]);
        let a = d.node(d.root_element().unwrap());
        assert_eq!(a.attributes().iter().map(|a| a.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn string_value_concatenates_descendants() {
        let d = Document::parse_str("<a>x<b>y<c>z</c></b>w</a>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "xyzw");
    }

    #[test]
    fn ancestor_relation() {
        let d = Document::parse_str("<a><b><c/></b><d/></a>").unwrap();
        let a = d.root_element().unwrap();
        let b = d.node(a).children[0];
        let c = d.node(b).children[0];
        let dd = d.node(a).children[1];
        assert!(d.is_ancestor(a, c));
        assert!(d.is_ancestor(b, c));
        assert!(!d.is_ancestor(c, b));
        assert!(!d.is_ancestor(b, dd));
        assert!(d.is_ancestor(d.root(), a));
    }

    #[test]
    fn levels_recorded() {
        let d = Document::parse_str("<a><b><c/></b></a>").unwrap();
        let levels: Vec<u32> = d.nodes().iter().map(|n| n.level).collect();
        assert_eq!(levels, [0, 1, 2, 3]);
    }

    #[test]
    fn spans_cover_elements() {
        let xml = "<a><b>t</b></a>";
        let d = Document::parse_str(xml).unwrap();
        let a = d.root_element().unwrap();
        let b = d.node(a).children[0];
        assert_eq!(d.node(b).span.slice(xml.as_bytes()).unwrap(), b"<b>t</b>");
        assert_eq!(d.node(a).span.slice(xml.as_bytes()).unwrap(), xml.as_bytes());
    }

    #[test]
    fn empty_elements_and_iteration() {
        let d = Document::parse_str("<a/>").unwrap();
        assert_eq!(d.elements().count(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.len(), 2); // virtual root + a
    }
}
