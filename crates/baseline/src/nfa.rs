//! A structure-only lazy-NFA path filter (XFilter/YFilter-style).
//!
//! Streaming XPath systems contemporary with ViteX (XFilter, YFilter,
//! XTrie) compiled *predicate-free path* queries into automata over SAX
//! events. This module implements that approach for the main-path-only
//! subset of the fragment — it cannot handle predicates at all, which is
//! precisely the gap ViteX's TwigM fills. It serves as (a) an independent
//! correctness reference for predicate-free queries and (b) the ablation
//! point "what does predicate support cost" in the benchmark suite.

use std::io::Read;

use vitex_xmlsax::{XmlEvent, XmlReader, XmlResult};
use vitex_xpath::query_tree::{NodeKind, QueryTree};
use vitex_xpath::Axis;

/// One NFA state per main-path step (plus the implicit start state 0).
/// A state is *active at depth d* if steps `1..=state` have been matched by
/// a chain ending at an open element of depth `d`.
#[derive(Debug, Clone)]
struct Transition {
    /// Element name to match (`None` = wildcard).
    name: Option<String>,
    /// Whether the step may skip levels.
    axis: Axis,
}

/// A compiled path NFA.
pub struct PathNfa {
    transitions: Vec<Transition>,
}

/// Why a query cannot be handled by the structure-only filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NFA filter cannot run this query: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

impl PathNfa {
    /// Compiles a predicate-free, element-only path query.
    pub fn compile(tree: &QueryTree) -> Result<PathNfa, Unsupported> {
        let mut transitions = Vec::new();
        for &q in tree.main_path() {
            let node = tree.node(q);
            if !node.pred_children.is_empty() {
                return Err(Unsupported("query has predicates".into()));
            }
            match &node.kind {
                NodeKind::Element { name } => {
                    transitions.push(Transition { name: name.clone(), axis: node.axis })
                }
                _ => return Err(Unsupported("attribute/text result".into())),
            }
        }
        Ok(PathNfa { transitions })
    }

    /// Runs the filter, returning the document-order ids of matching
    /// elements (ids numbered like the engine: element, then attributes,
    /// then content).
    pub fn run<R: Read>(&self, mut reader: XmlReader<R>) -> XmlResult<Vec<u64>> {
        let k = self.transitions.len();
        // Active state sets per open element: states[d] = states active
        // after processing the open chain down to depth d.
        // State i means "steps 1..=i matched"; state 0 is the start.
        let mut active_stack: Vec<Vec<usize>> = vec![vec![0]];
        let mut matches = Vec::new();
        let mut next_id: u64 = 0;
        loop {
            match reader.next_event()? {
                XmlEvent::StartElement(e) => {
                    let id = next_id;
                    next_id += 1 + e.attributes.len() as u64;
                    let parent_states = active_stack.last().expect("stack seeded");
                    let mut states: Vec<usize> = Vec::with_capacity(parent_states.len() + 1);
                    for &s in parent_states {
                        // A descendant-axis state persists below.
                        if s < k && self.transitions[s].axis == Axis::Descendant {
                            push_unique(&mut states, s);
                        }
                        // Try to advance.
                        if s < k {
                            let t = &self.transitions[s];
                            let name_ok = t.name.as_deref().is_none_or(|n| n == e.name.as_str());
                            if name_ok {
                                push_unique(&mut states, s + 1);
                            }
                        }
                        // Accepting states stay accepting only for the
                        // element that reached them; do not propagate.
                    }
                    // The start state is live at every depth for a leading
                    // descendant axis; for a leading child axis only at
                    // depth 0 (handled by persistence rules above since the
                    // root transition sits in state 0 of the parent set).
                    if states.contains(&k) {
                        matches.push(id);
                    }
                    active_stack.push(states);
                }
                XmlEvent::EndElement(_) => {
                    active_stack.pop();
                }
                XmlEvent::Characters(_) => {
                    next_id += 1; // keep document-order ids aligned
                }
                XmlEvent::EndDocument => break,
                _ => {}
            }
        }
        Ok(matches)
    }
}

fn push_unique(v: &mut Vec<usize>, s: usize) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// One-call convenience.
pub fn filter_str(xml: &str, query: &str) -> Result<Vec<u64>, Box<dyn std::error::Error>> {
    let tree = QueryTree::parse(query)?;
    let nfa = PathNfa::compile(&tree)?;
    Ok(nfa.run(XmlReader::from_str(xml))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xml: &str, query: &str) -> Vec<u64> {
        filter_str(xml, query).unwrap()
    }

    #[test]
    fn descendant_paths() {
        assert_eq!(ids("<a><b/><c><b/></c></a>", "//b"), [1, 3]);
        assert_eq!(ids("<a><x><b/></x></a>", "//a//b"), [2]);
    }

    #[test]
    fn child_paths() {
        assert_eq!(ids("<a><b/><c><b/></c></a>", "/a/b"), [1]);
        assert_eq!(ids("<a><b/></a>", "/b"), Vec::<u64>::new());
    }

    #[test]
    fn mixed_axes() {
        let xml = "<a><m><b><c/></b></m><b><c/></b></a>";
        assert_eq!(ids(xml, "//a//b/c"), [3, 5]);
        assert_eq!(ids(xml, "/a/b/c"), [5]);
    }

    #[test]
    fn wildcards() {
        assert_eq!(ids("<a><b/><c/></a>", "//*").len(), 3);
        assert_eq!(ids("<a><b/><c/></a>", "/a/*").len(), 2);
    }

    #[test]
    fn recursive_self() {
        let xml = "<a><a><a/></a></a>";
        assert_eq!(ids(xml, "//a//a"), [1, 2]);
    }

    #[test]
    fn rejects_predicates() {
        let tree = QueryTree::parse("//a[b]").unwrap();
        assert!(PathNfa::compile(&tree).is_err());
        let tree = QueryTree::parse("//a/@id").unwrap();
        assert!(PathNfa::compile(&tree).is_err());
    }
}
