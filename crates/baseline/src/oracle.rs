//! The non-streaming oracle evaluator.
//!
//! Evaluates the query tree over a materialized [`Document`] with memoized
//! recursion and random access — the conventional approach the paper
//! contrasts with streaming ("predicates can be checked immediately by
//! randomly accessing XML nodes"). It is polynomial, small, and obviously
//! correct, which makes it the gold standard for the differential property
//! tests: TwigM must produce exactly this result set on every input.

use std::collections::HashMap;

use vitex_core::predicate;
use vitex_xpath::query_tree::{NodeKind, QNodeId, QueryTree};
use vitex_xpath::Axis;

use crate::dom::{Document, DomIdx, DomKind};

/// A solution reported by the oracle: the same identity scheme as
/// [`vitex_core::Match`] (document-order node id), so sets compare
/// directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OracleMatch {
    /// Document-order id of the matched node.
    pub node: u64,
    /// Attribute value / text content, when applicable.
    pub value: Option<String>,
}

/// Evaluates `tree` over `doc`, returning matches sorted by node id.
pub fn evaluate(doc: &Document, tree: &QueryTree) -> Vec<OracleMatch> {
    let mut ev = Oracle { doc, tree, subtree_memo: HashMap::new(), prefix_memo: HashMap::new() };
    let main = tree.main_path();
    // The result node may be an attribute or text leaf; the last *element*
    // step is then the second-to-last main node.
    let result_node = tree.node(tree.result());
    let mut out = Vec::new();
    match &result_node.kind {
        NodeKind::Element { .. } => {
            for idx in ev.doc.elements().collect::<Vec<_>>() {
                if ev.matches_prefix(main.len() - 1, idx) {
                    out.push(OracleMatch { node: ev.doc.node(idx).id, value: None });
                }
            }
        }
        NodeKind::Attribute { name } => {
            let parent_pos = main.len() - 2;
            for idx in ev.doc.elements().collect::<Vec<_>>() {
                if ev.matches_prefix(parent_pos, idx) {
                    for attr in ev.doc.node(idx).attributes() {
                        let name_ok = name.as_deref().is_none_or(|n| n == attr.name);
                        let cmp_ok = match &result_node.comparison {
                            None => true,
                            Some((op, lit)) => predicate::compare(&attr.value, *op, lit),
                        };
                        if name_ok && cmp_ok {
                            out.push(OracleMatch {
                                node: attr.id,
                                value: Some(attr.value.clone()),
                            });
                        }
                    }
                }
            }
        }
        NodeKind::Text => {
            let parent_pos = main.len() - 2;
            for idx in ev.doc.elements().collect::<Vec<_>>() {
                if ev.matches_prefix(parent_pos, idx) {
                    for &c in &ev.doc.node(idx).children {
                        if let DomKind::Text { content } = &ev.doc.node(c).kind {
                            let cmp_ok = match &result_node.comparison {
                                None => true,
                                Some((op, lit)) => predicate::compare(content, *op, lit),
                            };
                            if cmp_ok {
                                out.push(OracleMatch {
                                    node: ev.doc.node(c).id,
                                    value: Some(content.clone()),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

struct Oracle<'a> {
    doc: &'a Document,
    tree: &'a QueryTree,
    /// (query node, dom element) → does the query node's predicate subtree
    /// match with the query node bound there?
    subtree_memo: HashMap<(QNodeId, DomIdx), bool>,
    /// (main-path position, dom element) → is there a chain binding main
    /// steps 0..=pos ending at this element (with all predicates)?
    prefix_memo: HashMap<(usize, DomIdx), bool>,
}

impl Oracle<'_> {
    /// Does `idx` carry a full binding of main steps `0..=pos`?
    fn matches_prefix(&mut self, pos: usize, idx: DomIdx) -> bool {
        if let Some(&hit) = self.prefix_memo.get(&(pos, idx)) {
            return hit;
        }
        let q = self.tree.main_path()[pos];
        let mut ok = self.node_matches(q, idx);
        if ok {
            let qnode = self.tree.node(q);
            ok = if pos == 0 {
                match qnode.axis {
                    Axis::Child => self.doc.node(idx).level == 1,
                    Axis::Descendant => true,
                }
            } else {
                match qnode.axis {
                    Axis::Child => match self.doc.node(idx).parent {
                        Some(p) if self.doc.node(p).is_element() => self.matches_prefix(pos - 1, p),
                        _ => false,
                    },
                    Axis::Descendant => {
                        let mut cur = self.doc.node(idx).parent;
                        let mut found = false;
                        while let Some(p) = cur {
                            if self.doc.node(p).is_element() && self.matches_prefix(pos - 1, p) {
                                found = true;
                                break;
                            }
                            cur = self.doc.node(p).parent;
                        }
                        found
                    }
                }
            };
        }
        self.prefix_memo.insert((pos, idx), ok);
        ok
    }

    /// Does element `idx` satisfy query node `q`'s own tests: name,
    /// value comparison, and all predicate subtrees?
    fn node_matches(&mut self, q: QNodeId, idx: DomIdx) -> bool {
        if let Some(&hit) = self.subtree_memo.get(&(q, idx)) {
            return hit;
        }
        let qnode = self.tree.node(q);
        let node = self.doc.node(idx);
        let mut ok = match (&qnode.kind, &node.kind) {
            (NodeKind::Element { name }, DomKind::Element { name: ename, .. }) => {
                name.as_deref().is_none_or(|n| n == ename)
            }
            _ => false,
        };
        if ok {
            if let Some((op, lit)) = &qnode.comparison {
                ok = predicate::compare(&self.doc.string_value(idx), *op, lit);
            }
        }
        if ok {
            for &pc in &qnode.pred_children.clone() {
                if !self.pred_witnessed(pc, idx) {
                    ok = false;
                    break;
                }
            }
        }
        self.subtree_memo.insert((q, idx), ok);
        ok
    }

    /// Is predicate child `pc` witnessed somewhere under element `idx`
    /// (respecting `pc`'s axis)?
    fn pred_witnessed(&mut self, pc: QNodeId, idx: DomIdx) -> bool {
        let qnode = self.tree.node(pc).clone();
        match &qnode.kind {
            NodeKind::Attribute { name } => {
                debug_assert_eq!(qnode.axis, Axis::Child);
                self.doc.node(idx).attributes().iter().any(|a| {
                    name.as_deref().is_none_or(|n| n == a.name)
                        && qnode
                            .comparison
                            .as_ref()
                            .is_none_or(|(op, lit)| predicate::compare(&a.value, *op, lit))
                })
            }
            NodeKind::Text => {
                debug_assert_eq!(qnode.axis, Axis::Child);
                self.doc.node(idx).children.clone().iter().any(|&c| match &self.doc.node(c).kind {
                    DomKind::Text { content } => qnode
                        .comparison
                        .as_ref()
                        .is_none_or(|(op, lit)| predicate::compare(content, *op, lit)),
                    _ => false,
                })
            }
            NodeKind::Element { .. } => match qnode.axis {
                Axis::Child => self
                    .doc
                    .node(idx)
                    .children
                    .clone()
                    .iter()
                    .any(|&c| self.doc.node(c).is_element() && self.node_matches(pc, c)),
                Axis::Descendant => self.any_descendant_matches(pc, idx),
            },
        }
    }

    fn any_descendant_matches(&mut self, pc: QNodeId, idx: DomIdx) -> bool {
        for &c in &self.doc.node(idx).children.clone() {
            if self.doc.node(c).is_element()
                && (self.node_matches(pc, c) || self.any_descendant_matches(pc, c))
            {
                return true;
            }
        }
        false
    }
}

/// Convenience: parse + evaluate in one call.
pub fn evaluate_str(xml: &str, query: &str) -> Vec<OracleMatch> {
    let doc = Document::parse_str(xml).expect("well-formed XML");
    let tree = QueryTree::parse(query).expect("valid query");
    evaluate(&doc, &tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xml: &str, query: &str) -> Vec<u64> {
        evaluate_str(xml, query).into_iter().map(|m| m.node).collect()
    }

    #[test]
    fn simple_descendant() {
        assert_eq!(ids("<a><b/><c><b/></c></a>", "//b"), [1, 3]);
    }

    #[test]
    fn child_axis() {
        assert_eq!(ids("<a><b/><c><b/></c></a>", "/a/b"), [1]);
        assert_eq!(ids("<a><b/></a>", "/x"), Vec::<u64>::new());
    }

    #[test]
    fn paper_figure_1() {
        // The Figure 1 document; only cell_8 (the cell under table_7 via
        // section_2's chain... in our ids: cell is node id 7) matches.
        let xml = "<book><section><section><section>\
                   <table><table><table><cell>A</cell></table></table>\
                   <position>B</position></table>\
                   </section></section><author>C</author></section></book>";
        let ms = evaluate_str(xml, "//section[author]//table[position]//cell");
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn predicates_with_values() {
        let xml = "<lib><book><year>2003</year></book><book><year>1999</year></book></lib>";
        assert_eq!(ids(xml, "//book[year > 2000]").len(), 1);
        assert_eq!(ids(xml, "//book[year = 1999]").len(), 1);
        assert_eq!(ids(xml, "//book[year]").len(), 2);
    }

    #[test]
    fn attribute_results_and_predicates() {
        let xml = "<r><a id=\"x\" k=\"1\"/><a id=\"y\"/><a/></r>";
        let ms = evaluate_str(xml, "//a/@id");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].value.as_deref(), Some("x"));
        assert_eq!(ids(xml, "//a[@k]/@id").len(), 1);
    }

    #[test]
    fn text_results() {
        let xml = "<a>one<b>two</b>three</a>";
        let ms = evaluate_str(xml, "//a/text()");
        let vals: Vec<&str> = ms.iter().filter_map(|m| m.value.as_deref()).collect();
        assert_eq!(vals, ["one", "three"]);
    }

    #[test]
    fn wildcards() {
        assert_eq!(ids("<a><b/><c/></a>", "//*").len(), 3);
        assert_eq!(ids("<a><b/><c/></a>", "/a/*").len(), 2);
    }

    #[test]
    fn string_value_uses_descendant_text() {
        let xml = "<r><a><b>x<c>y</c></b></a></r>";
        assert_eq!(ids(xml, "//a[b = 'xy']").len(), 1);
        assert_eq!(ids(xml, "//a[b = 'x']").len(), 0);
    }

    #[test]
    fn deep_recursion_memoizes() {
        // 200-deep nesting of <a>; //a//a//a should not blow up.
        let depth = 200;
        let xml = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        assert_eq!(ids(&xml, "//a//a//a").len(), depth - 2);
    }

    #[test]
    fn rewritten_leading_attribute() {
        let xml = "<r id=\"1\"><a id=\"2\"/></r>";
        assert_eq!(ids(xml, "//@id").len(), 2);
    }
}
